//! `mpss-metrics`: a live, labeled telemetry registry for long-running
//! processes.
//!
//! The [`RecordingCollector`](crate::RecordingCollector) answers "what did
//! this run do?" *after* the run exits; a daemon that never exits needs
//! scrapeable state instead. [`MetricsHub`] is that state: a registry of
//! **counters**, **gauges**, and **windowed histograms**, each carrying a
//! label set (`{algo="oa", proc="3"}`-style), safe to update from worker
//! threads and to render from a scrape thread concurrently.
//!
//! Design constraints, in the spirit of the rest of this crate:
//!
//! * **Zero dependencies.** Handles are `Arc<AtomicU64>` (counters, and
//!   gauges as f64 bit patterns) or `Arc<Mutex<…>>` (histograms); the text
//!   exposition is hand-rolled like the Chrome trace JSON in the `chrome`
//!   module.
//! * **Bounded memory.** Histograms keep exact lifetime `count`/`sum` and
//!   cumulative bucket counts, plus a fixed-capacity [`RingSampler`] of the
//!   most recent observations for live quantiles — a process that runs for a
//!   year holds exactly as much metric state as one that runs for a second.
//! * **Zero overhead when off.** Nothing here touches the [`Collector`]
//!   hot path: instrumented code stays generic over `C: Collector`, and the
//!   [`MetricsCollector`] bridge is just one more collector to `Tee` in —
//!   runs without it are byte-identical to before.
//!
//! The exposition format is the Prometheus text format (version 0.0.4):
//! `# HELP` / `# TYPE` comments, `name{label="value"} 123` samples, and
//! `_bucket`/`_sum`/`_count` series for histograms. [`crate::expo`] parses
//! it back — the round-trip is tested, and `mpss-cli scrape` validates any
//! live endpoint against the parser and the
//! [`names`](crate::names::known_metric) manifest.

use crate::{Collector, TrackedCollector};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default histogram bucket upper bounds, in seconds: latency-shaped,
/// spanning 250 µs to 10 s. Callers measuring other units pass their own
/// bounds to [`MetricsHub::histogram_with`].
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Default [`RingSampler`] capacity for windowed quantiles.
pub const DEFAULT_WINDOW: usize = 1024;

/// A fixed-capacity ring buffer of the most recent `f64` samples.
///
/// Pushing beyond capacity overwrites the oldest sample, so memory stays
/// bounded however long the process runs; quantiles are computed over the
/// retained window by the same nearest-rank rule as
/// [`Histogram::quantile`](crate::Histogram::quantile).
#[derive(Clone, Debug)]
pub struct RingSampler {
    buf: Vec<f64>,
    capacity: usize,
    /// Next write position once the buffer has wrapped.
    head: usize,
}

impl RingSampler {
    /// A sampler retaining the latest `capacity` samples (clamped to ≥ 1).
    pub fn new(capacity: usize) -> RingSampler {
        let capacity = capacity.max(1);
        RingSampler {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
        }
    }

    /// Records one sample, evicting the oldest once full. Non-finite values
    /// are dropped, mirroring [`Histogram::record`](crate::Histogram::record).
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before the first (finite) sample.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention capacity this sampler was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The window's samples, oldest first.
    pub fn samples(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Nearest-rank `q`-quantile (`0 ≤ q ≤ 1`) over the window; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        let mut sorted = self.buf.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `by`.
    pub fn add(&self, by: u64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (stored as `f64` bits in an atomic).
/// Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Lifetime-exact aggregates plus a bounded window of recent samples.
#[derive(Debug)]
struct WindowState {
    count: u64,
    sum: f64,
    /// Upper bucket bounds (strictly increasing; an implicit `+Inf` bucket
    /// follows). `bucket_counts[i]` counts observations `≤ bounds[i]`
    /// *non*-cumulatively; the final slot is the `+Inf` overflow.
    bounds: Arc<[f64]>,
    bucket_counts: Vec<u64>,
    ring: RingSampler,
}

impl WindowState {
    fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.bucket_counts[slot] += 1;
        self.ring.push(value);
    }
}

/// A histogram with lifetime-cumulative buckets and windowed quantiles.
/// Cloning shares the underlying state.
#[derive(Clone, Debug)]
pub struct WindowHistogram(Arc<Mutex<WindowState>>);

impl WindowHistogram {
    /// Records one observation (non-finite values are dropped).
    pub fn observe(&self, value: f64) {
        self.0.lock().expect("histogram poisoned").observe(value);
    }

    /// Lifetime observation count.
    pub fn count(&self) -> u64 {
        self.0.lock().expect("histogram poisoned").count
    }

    /// Lifetime sum of observations.
    pub fn sum(&self) -> f64 {
        self.0.lock().expect("histogram poisoned").sum
    }

    /// Number of samples currently retained in the window.
    pub fn window_len(&self) -> usize {
        self.0.lock().expect("histogram poisoned").ring.len()
    }

    /// Nearest-rank quantile over the retained window (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        self.0.lock().expect("histogram poisoned").ring.quantile(q)
    }
}

/// One metric family's kind, as exposed in `# TYPE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`_total` suffix by convention).
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Cumulative-bucket histogram with windowed quantiles.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

type LabelSet = Vec<(String, String)>;

#[derive(Debug)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Mutex<WindowState>>),
}

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Bucket bounds shared by every series of a histogram family (the
    /// exposition format requires family-consistent buckets).
    bounds: Option<Arc<[f64]>>,
    window: usize,
    series: BTreeMap<LabelSet, Series>,
}

/// The shared metrics registry. Cloning is cheap (an `Arc`); all clones see
/// one registry, so a scrape thread renders what worker threads update.
#[derive(Clone, Debug, Default)]
pub struct MetricsHub {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name != "le"
        && name != "quantile"
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| {
            assert!(valid_label_name(k), "invalid label name {k:?}");
            (k.to_string(), v.to_string())
        })
        .collect();
    set.sort();
    assert!(
        set.windows(2).all(|w| w[0].0 != w[1].0),
        "duplicate label name in {labels:?}"
    );
    set
}

/// Escapes a label value for the exposition format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`. This is what keeps distinct label sets distinct on the
/// wire (no crafted value can smuggle a `",other="` separator in).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders an exposition value: `+Inf`/`-Inf`/`NaN` spellings, shortest-form
/// floats otherwise.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
}

/// One row of a [`MetricsHub::snapshot`].
#[derive(Clone, Debug)]
pub struct SnapshotRow {
    /// Family name.
    pub name: String,
    /// The series' sorted label set.
    pub labels: Vec<(String, String)>,
    /// The series' current value.
    pub value: SnapshotValue,
}

/// The value part of a [`SnapshotRow`].
#[derive(Clone, Debug)]
pub enum SnapshotValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(f64),
    /// Histogram aggregates: lifetime count/sum and windowed quantiles.
    Histogram {
        /// Lifetime observation count.
        count: u64,
        /// Lifetime sum.
        sum: f64,
        /// Windowed median.
        p50: f64,
        /// Windowed 90th percentile.
        p90: f64,
        /// Windowed 99th percentile.
        p99: f64,
        /// Samples currently in the window.
        window: usize,
    },
}

impl MetricsHub {
    /// An empty registry.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        window: usize,
        buckets: Option<&[f64]>,
    ) -> Series {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let set = label_set(labels);
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| {
            let bounds: Option<Arc<[f64]>> = (kind == MetricKind::Histogram).then(|| {
                let bounds = buckets.unwrap_or(DEFAULT_BUCKETS);
                assert!(
                    bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
                    "histogram bounds must be finite and strictly increasing"
                );
                bounds.into()
            });
            Family {
                kind,
                help: help.to_string(),
                bounds,
                window,
                series: BTreeMap::new(),
            }
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} already registered as {:?}",
            family.kind
        );
        let series = family.series.entry(set).or_insert_with(|| match kind {
            MetricKind::Counter => Series::Counter(Arc::new(AtomicU64::new(0))),
            MetricKind::Gauge => Series::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))),
            MetricKind::Histogram => {
                let bounds = family.bounds.clone().expect("histogram family has bounds");
                let slots = bounds.len() + 1;
                Series::Histogram(Arc::new(Mutex::new(WindowState {
                    count: 0,
                    sum: 0.0,
                    bounds,
                    bucket_counts: vec![0; slots],
                    ring: RingSampler::new(family.window),
                })))
            }
        });
        match series {
            Series::Counter(c) => Series::Counter(c.clone()),
            Series::Gauge(g) => Series::Gauge(g.clone()),
            Series::Histogram(h) => Series::Histogram(h.clone()),
        }
    }

    /// Registers (or retrieves) the counter `name{labels}`. Re-registering
    /// the same series returns a handle to the same cell.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, MetricKind::Counter, labels, 0, None) {
            Series::Counter(c) => Counter(c),
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, MetricKind::Gauge, labels, 0, None) {
            Series::Gauge(g) => Gauge(g),
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) the histogram `name{labels}` with the
    /// default window and bucket bounds.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> WindowHistogram {
        self.histogram_with(name, help, labels, DEFAULT_WINDOW, DEFAULT_BUCKETS)
    }

    /// [`histogram`](MetricsHub::histogram) with an explicit ring-buffer
    /// window capacity and bucket bounds (finite, strictly increasing; the
    /// `+Inf` bucket is implicit). The first registration of a family fixes
    /// its bounds and window; later series reuse them.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        window: usize,
        buckets: &[f64],
    ) -> WindowHistogram {
        match self.register(
            name,
            help,
            MetricKind::Histogram,
            labels,
            window,
            Some(buckets),
        ) {
            Series::Histogram(h) => WindowHistogram(h),
            _ => unreachable!(),
        }
    }

    /// A point-in-time copy of every series, for stdout tables and tests.
    /// Rows come back sorted by family name, then label set.
    pub fn snapshot(&self) -> Vec<SnapshotRow> {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut rows = Vec::new();
        for (name, family) in families.iter() {
            for (labels, series) in &family.series {
                let value = match series {
                    Series::Counter(c) => SnapshotValue::Counter(c.load(Ordering::Relaxed)),
                    Series::Gauge(g) => {
                        SnapshotValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                    }
                    Series::Histogram(h) => {
                        let state = h.lock().expect("histogram poisoned");
                        SnapshotValue::Histogram {
                            count: state.count,
                            sum: state.sum,
                            p50: state.ring.quantile(0.50),
                            p90: state.ring.quantile(0.90),
                            p99: state.ring.quantile(0.99),
                            window: state.ring.len(),
                        }
                    }
                };
                rows.push(SnapshotRow {
                    name: name.clone(),
                    labels: labels.clone(),
                    value,
                });
            }
        }
        rows
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): families sorted by name, series sorted by label
    /// set, histograms as cumulative `_bucket`/`_sum`/`_count` triples.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(name);
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", c.load(Ordering::Relaxed));
                    }
                    Series::Gauge(g) => {
                        out.push_str(name);
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(
                            out,
                            " {}",
                            format_value(f64::from_bits(g.load(Ordering::Relaxed)))
                        );
                    }
                    Series::Histogram(h) => {
                        let state = h.lock().expect("histogram poisoned");
                        let mut cumulative = 0u64;
                        for (i, bound) in state.bounds.iter().enumerate() {
                            cumulative += state.bucket_counts[i];
                            let _ = write!(out, "{name}_bucket");
                            render_labels(
                                &mut out,
                                labels,
                                Some(("le", format_value(*bound).as_str())),
                            );
                            let _ = writeln!(out, " {cumulative}");
                        }
                        let _ = write!(out, "{name}_bucket");
                        render_labels(&mut out, labels, Some(("le", "+Inf")));
                        let _ = writeln!(out, " {}", state.count);
                        let _ = write!(out, "{name}_sum");
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", format_value(state.sum));
                        let _ = write!(out, "{name}_count");
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", state.count);
                    }
                }
            }
        }
        out
    }
}

/// A [`Collector`] that forwards instrumentation events into a
/// [`MetricsHub`] — the bridge that lights up live `/metrics` for the whole
/// already-instrumented stack without touching a single call site.
///
/// Mapping (names sanitized by [`names::prom_counter`](crate::names::prom_counter)
/// and friends: `.` → `_`, `mpss_` prefix):
///
/// * `count("offline.phases", n)` → counter
///   `mpss_offline_phases_total{track="…"}`;
/// * `instant(name)` → the same-named counter, incremented by 1 (instants
///   fold into counters, as in the aggregating collectors);
/// * `observe("driver.online_energy", v)` → histogram
///   `mpss_driver_online_energy{track="…"}`;
/// * spans → histogram `mpss_span_seconds{span="…", track="…"}` of wall
///   durations, observed at `span_end`.
///
/// The `track` label is the [`TrackedCollector`] lane: `main` at the root,
/// the fork name (`worker-3`, `race.dinic`, …) inside parallel sections —
/// bounded cardinality, since lane names come from the pool and the race
/// harness, never from data.
pub struct MetricsCollector {
    hub: MetricsHub,
    track: String,
    counters: BTreeMap<&'static str, Counter>,
    histograms: BTreeMap<&'static str, WindowHistogram>,
    span_hists: BTreeMap<&'static str, WindowHistogram>,
    open_spans: Vec<(&'static str, Instant)>,
}

impl MetricsCollector {
    /// A collector feeding `hub`, recording on the root track `main`.
    pub fn new(hub: &MetricsHub) -> MetricsCollector {
        MetricsCollector::with_track(hub, "main")
    }

    /// A collector feeding `hub` on an explicitly named track.
    pub fn with_track(hub: &MetricsHub, track: &str) -> MetricsCollector {
        MetricsCollector {
            hub: hub.clone(),
            track: track.to_string(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            span_hists: BTreeMap::new(),
            open_spans: Vec::new(),
        }
    }

    /// The hub this collector feeds.
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    fn counter_handle(&mut self, name: &'static str) -> &Counter {
        self.counters.entry(name).or_insert_with(|| {
            self.hub.counter(
                &crate::names::prom_counter(name),
                name,
                &[("track", self.track.as_str())],
            )
        })
    }
}

impl Collector for MetricsCollector {
    fn span_start(&mut self, name: &'static str) {
        self.open_spans.push((name, Instant::now()));
    }

    fn span_end(&mut self, name: &'static str) {
        let Some((opened, began)) = self.open_spans.pop() else {
            return;
        };
        let _ = opened; // mismatches are the RecordingCollector's to report
        let seconds = began.elapsed().as_secs_f64();
        let (hub, track) = (&self.hub, self.track.as_str());
        self.span_hists
            .entry(name)
            .or_insert_with(|| {
                hub.histogram(
                    crate::names::PROM_SPAN_SECONDS,
                    "wall-clock span durations by span name and track",
                    &[("span", name), ("track", track)],
                )
            })
            .observe(seconds);
    }

    fn count(&mut self, counter: &'static str, by: u64) {
        self.counter_handle(counter).add(by);
    }

    fn observe(&mut self, histogram: &'static str, value: f64) {
        let (hub, track) = (&self.hub, self.track.as_str());
        self.histograms
            .entry(histogram)
            .or_insert_with(|| {
                hub.histogram(
                    &crate::names::prom_histogram(histogram),
                    histogram,
                    &[("track", track)],
                )
            })
            .observe(value);
    }

    fn instant(&mut self, name: &'static str) {
        self.counter_handle(name).inc();
    }

    fn enabled(&self) -> bool {
        true
    }
}

impl TrackedCollector for MetricsCollector {
    type Track = MetricsCollector;

    fn fork(&mut self, name: &str) -> MetricsCollector {
        MetricsCollector::with_track(&self.hub, name)
    }

    fn adopt(&mut self, _track: MetricsCollector) {
        // Nothing to merge: every track writes straight into the shared hub.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_across_clones() {
        let hub = MetricsHub::new();
        let a = hub.counter("mpss_test_total", "test counter", &[("k", "v")]);
        let b = hub.counter("mpss_test_total", "test counter", &[("k", "v")]);
        a.add(2);
        b.inc();
        assert_eq!(a.value(), 3);
        let g = hub.gauge("mpss_test_gauge", "test gauge", &[]);
        g.set(1.5);
        assert_eq!(hub.gauge("mpss_test_gauge", "test gauge", &[]).value(), 1.5);
    }

    #[test]
    fn distinct_label_sets_are_distinct_series() {
        let hub = MetricsHub::new();
        hub.counter("mpss_multi_total", "h", &[("engine", "dinic")])
            .inc();
        hub.counter("mpss_multi_total", "h", &[("engine", "pr")])
            .add(5);
        let rows = hub.snapshot();
        let values: Vec<u64> = rows
            .iter()
            .filter(|r| r.name == "mpss_multi_total")
            .map(|r| match r.value {
                SnapshotValue::Counter(v) => v,
                _ => panic!("counter expected"),
            })
            .collect();
        assert_eq!(values, vec![1, 5]); // sorted by label set: dinic, pr
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_is_a_programmer_error() {
        let hub = MetricsHub::new();
        hub.counter("mpss_clash", "as counter", &[]);
        hub.gauge("mpss_clash", "as gauge", &[]);
    }

    #[test]
    fn ring_sampler_wraps_and_keeps_the_newest() {
        let mut ring = RingSampler::new(4);
        for v in 1..=10 {
            ring.push(v as f64);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.samples(), vec![7.0, 8.0, 9.0, 10.0]);
        assert_eq!(ring.quantile(0.0), 7.0);
        assert_eq!(ring.quantile(1.0), 10.0);
    }

    #[test]
    fn ring_sampler_empty_window_quantiles_are_zero() {
        let ring = RingSampler::new(8);
        assert!(ring.is_empty());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(ring.quantile(q), 0.0);
        }
    }

    #[test]
    fn ring_sampler_single_sample_window_is_degenerate() {
        let mut ring = RingSampler::new(8);
        ring.push(3.25);
        for q in [0.0, 0.5, 0.9, 1.0] {
            assert_eq!(ring.quantile(q), 3.25);
        }
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn ring_sampler_drops_non_finite_and_clamps_capacity() {
        let mut ring = RingSampler::new(0); // clamps to 1
        ring.push(f64::NAN);
        ring.push(f64::INFINITY);
        assert!(ring.is_empty());
        ring.push(2.0);
        ring.push(4.0); // evicts 2.0 in a capacity-1 window
        assert_eq!(ring.samples(), vec![4.0]);
    }

    #[test]
    fn histogram_buckets_accumulate_while_window_stays_bounded() {
        let hub = MetricsHub::new();
        let h = hub.histogram_with("mpss_lat", "latency", &[], 4, &[1.0, 10.0]);
        for v in [0.5, 0.5, 5.0, 50.0, 2.0, 3.0, 4.0, 6.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.window_len(), 4); // ring holds only the last 4
        let text = hub.render();
        assert!(text.contains("# TYPE mpss_lat histogram"), "{text}");
        assert!(text.contains("mpss_lat_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("mpss_lat_bucket{le=\"10\"} 7"), "{text}");
        assert!(text.contains("mpss_lat_bucket{le=\"+Inf\"} 8"), "{text}");
        assert!(text.contains("mpss_lat_count 8"), "{text}");
        // Windowed quantiles see only the retained suffix [2,3,4,6].
        assert_eq!(h.quantile(0.0), 2.0);
        assert_eq!(h.quantile(1.0), 6.0);
    }

    #[test]
    fn escaping_prevents_label_set_collisions() {
        // Without escaping these two series would render identically.
        let hub = MetricsHub::new();
        hub.counter("mpss_col_total", "h", &[("a", "x\",b=\"y")])
            .inc();
        hub.counter("mpss_col_total", "h", &[("a", "x"), ("b", "y")])
            .add(7);
        let text = hub.render();
        assert!(
            text.contains(r#"mpss_col_total{a="x\",b=\"y"} 1"#),
            "{text}"
        );
        assert!(text.contains(r#"mpss_col_total{a="x",b="y"} 7"#), "{text}");
    }

    #[test]
    fn render_spells_special_values_the_prometheus_way() {
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(0.25), "0.25");
        let hub = MetricsHub::new();
        hub.gauge("mpss_g", "gauge", &[]).set(f64::INFINITY);
        assert!(hub.render().contains("mpss_g +Inf"));
    }

    #[test]
    fn metrics_collector_maps_events_to_labeled_series() {
        let hub = MetricsHub::new();
        let mut mc = MetricsCollector::new(&hub);
        mc.count("offline.phases", 3);
        mc.instant("oa.arrival");
        mc.observe("driver.online_energy", 2.5);
        mc.span_start("oa.replan");
        mc.span_end("oa.replan");
        let mut worker = mc.fork("worker-1");
        worker.count("offline.phases", 2);
        mc.adopt(worker);
        let text = hub.render();
        assert!(
            text.contains("mpss_offline_phases_total{track=\"main\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("mpss_offline_phases_total{track=\"worker-1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("mpss_oa_arrival_total{track=\"main\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mpss_span_seconds_count{span=\"oa.replan\",track=\"main\"} 1"),
            "{text}"
        );
        assert!(text.contains("mpss_driver_online_energy_sum"), "{text}");
    }

    #[test]
    fn snapshot_reports_windowed_quantiles() {
        let hub = MetricsHub::new();
        let h = hub.histogram("mpss_q", "quantiles", &[]);
        for v in 1..=100 {
            h.observe(v as f64 / 100.0);
        }
        let rows = hub.snapshot();
        let Some(SnapshotValue::Histogram {
            count, p50, p99, ..
        }) = rows
            .iter()
            .find(|r| r.name == "mpss_q")
            .map(|r| r.value.clone())
        else {
            panic!("histogram row missing");
        };
        assert_eq!(count, 100);
        assert!((p50 - 0.5).abs() <= 0.02, "{p50}");
        assert!(p99 >= 0.98, "{p99}");
    }
}
