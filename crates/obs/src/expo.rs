//! A hand-rolled parser for the Prometheus text exposition format.
//!
//! [`MetricsHub::render`](crate::MetricsHub::render) emits the format; this
//! module reads it back, which buys two things:
//!
//! * the **round-trip test** — whatever the hub renders must parse to the
//!   same names, labels, and bucket counts, so a formatting bug (bad
//!   escaping, non-cumulative buckets) fails in-repo instead of in a
//!   scraper;
//! * **endpoint validation** — `mpss-cli scrape` fetches a live `/metrics`,
//!   parses it with this parser, and checks every family against the
//!   [`names`](crate::names::known_metric) manifest.
//!
//! The parser is deliberately stricter than a forgiving scraper: every
//! sample must belong to a `# TYPE`d family, duplicate series are an error
//! (that is how label-escaping collisions surface), and histogram families
//! must have non-decreasing cumulative buckets ending in a `+Inf` bucket
//! that equals `_count`.

use std::collections::BTreeMap;

/// One `name{labels} value` sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpoSample {
    /// The sample name as written — for histograms this carries the
    /// `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// Label pairs in written order (including `le` on bucket samples).
    pub labels: Vec<(String, String)>,
    /// The parsed value (`+Inf`/`-Inf`/`NaN` spellings accepted).
    pub value: f64,
}

impl ExpoSample {
    /// The value of label `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn series_key(&self) -> String {
        let mut labels = self.labels.clone();
        labels.sort();
        let mut key = self.name.clone();
        for (k, v) in labels {
            key.push('\u{1}');
            key.push_str(&k);
            key.push('\u{2}');
            key.push_str(&v);
        }
        key
    }
}

/// One metric family: the `# HELP`/`# TYPE` header plus its samples.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpoFamily {
    /// Family name (without histogram suffixes).
    pub name: String,
    /// `counter`, `gauge`, or `histogram` (whatever `# TYPE` declared).
    pub kind: String,
    /// The `# HELP` text (escapes decoded).
    pub help: String,
    /// Samples belonging to this family.
    pub samples: Vec<ExpoSample>,
}

impl ExpoFamily {
    /// The first sample with the exact suffixed `name` whose labels are a
    /// superset of `labels`.
    pub fn sample(&self, name: &str, labels: &[(&str, &str)]) -> Option<&ExpoSample> {
        self.samples.iter().find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.label(k).is_some_and(|found| found == *v))
        })
    }
}

/// A parsed, validated exposition document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Exposition {
    /// Families in document order.
    pub families: Vec<ExpoFamily>,
}

impl Exposition {
    /// The family named `name`, if present.
    pub fn family(&self, name: &str) -> Option<&ExpoFamily> {
        self.families.iter().find(|f| f.name == name)
    }
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("unparseable value {other:?}")),
    }
}

fn decode_escapes(raw: &str, line_no: usize) -> Result<String, String> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => return Err(format!("line {line_no}: bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

/// Label pairs plus the unparsed remainder of the line.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses `{k="v",…}` starting after the `{`; returns labels and the rest of
/// the line after the closing `}`.
fn parse_labels(mut rest: &str, line_no: usize) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        if rest.is_empty() {
            return Err(format!("line {line_no}: unterminated label set"));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let name = rest[..eq].trim().to_string();
        if name.is_empty() {
            return Err(format!("line {line_no}: empty label name"));
        }
        let quoted = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {line_no}: label value not quoted"))?;
        // Scan for the closing quote, honoring escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in quoted.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((name, decode_escapes(&quoted[..end], line_no)?));
        rest = &quoted[end + 1..];
        if let Some(after_comma) = rest.strip_prefix(',') {
            rest = after_comma;
        } else if !rest.starts_with('}') {
            return Err(format!("line {line_no}: expected ',' or '}}' after label"));
        }
    }
}

fn metric_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses and validates a text-exposition document.
///
/// Validation beyond grammar: every sample must belong to a declared family
/// (histogram families own their `_bucket`/`_sum`/`_count` series),
/// duplicate `(name, label set)` samples are an error, and every histogram
/// series must have increasing `le` bounds, non-decreasing cumulative
/// counts, and a `+Inf` bucket equal to its `_count`.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut families: Vec<ExpoFamily> = Vec::new();
    let mut index: BTreeMap<String, usize> = BTreeMap::new();
    let mut seen_series: BTreeMap<String, usize> = BTreeMap::new();

    for (no, raw_line) in text.lines().enumerate() {
        let line_no = no + 1;
        let line = raw_line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            let (keyword, rest) = match comment.split_once(' ') {
                Some(split) => split,
                None => continue, // bare comment
            };
            if keyword != "HELP" && keyword != "TYPE" {
                continue; // free-form comment
            }
            let (name, payload) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {line_no}: # {keyword} without payload"))?;
            if !metric_name_ok(name) {
                return Err(format!("line {line_no}: bad metric name {name:?}"));
            }
            let idx = *index.entry(name.to_string()).or_insert_with(|| {
                families.push(ExpoFamily {
                    name: name.to_string(),
                    kind: String::new(),
                    help: String::new(),
                    samples: Vec::new(),
                });
                families.len() - 1
            });
            if keyword == "HELP" {
                families[idx].help = decode_escapes(payload, line_no)?
            } else {
                let kind = payload.trim();
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(format!("line {line_no}: unknown TYPE {kind:?}"));
                }
                families[idx].kind = kind.to_string();
            }
            continue;
        }

        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        let name = &line[..name_end];
        if !metric_name_ok(name) {
            return Err(format!("line {line_no}: bad sample name {name:?}"));
        }
        let (labels, value_part) = if line[name_end..].starts_with('{') {
            parse_labels(&line[name_end + 1..], line_no)?
        } else {
            (Vec::new(), &line[name_end..])
        };
        let value_text = value_part.trim();
        // Ignore an optional timestamp (second whitespace-separated token).
        let value_text = value_text
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        let value = parse_value(value_text).map_err(|e| format!("line {line_no}: {e}"))?;

        // Attribute to a family: exact name, else histogram suffixes.
        let owner = index.get(name).copied().or_else(|| {
            ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                name.strip_suffix(suffix)
                    .and_then(|base| index.get(base))
                    .copied()
                    .filter(|&i| families[i].kind == "histogram")
            })
        });
        let Some(owner) = owner else {
            return Err(format!(
                "line {line_no}: sample {name:?} has no # TYPE family"
            ));
        };
        let sample = ExpoSample {
            name: name.to_string(),
            labels,
            value,
        };
        if let Some(first) = seen_series.insert(sample.series_key(), line_no) {
            return Err(format!(
                "line {line_no}: duplicate series {name:?} (first at line {first}) — \
                 label sets must be distinct after escaping"
            ));
        }
        families[owner].samples.push(sample);
    }

    for family in &families {
        if family.kind.is_empty() {
            return Err(format!("family {:?} has # HELP but no # TYPE", family.name));
        }
        if family.kind == "histogram" {
            validate_histogram(family)?;
        }
    }
    Ok(Exposition { families })
}

/// Groups a histogram family's samples by their non-`le` label set and
/// checks cumulative-bucket semantics per series.
fn validate_histogram(family: &ExpoFamily) -> Result<(), String> {
    let bucket_name = format!("{}_bucket", family.name);
    let sum_name = format!("{}_sum", family.name);
    let count_name = format!("{}_count", family.name);

    let series_of = |s: &ExpoSample| -> String {
        let mut labels: Vec<(String, String)> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect();
        labels.sort();
        format!("{labels:?}")
    };

    let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut sums: BTreeMap<String, bool> = BTreeMap::new();
    for s in &family.samples {
        if s.name == bucket_name {
            let le = s
                .label("le")
                .ok_or_else(|| format!("{bucket_name}: bucket without le label"))?;
            let bound = parse_value(le).map_err(|e| format!("{bucket_name}: {e}"))?;
            buckets
                .entry(series_of(s))
                .or_default()
                .push((bound, s.value));
        } else if s.name == count_name {
            counts.insert(series_of(s), s.value);
        } else if s.name == sum_name {
            sums.insert(series_of(s), true);
        }
    }

    for (series, entries) in &buckets {
        for pair in entries.windows(2) {
            if pair[0].0 >= pair[1].0 {
                return Err(format!(
                    "{}: series {series} bucket bounds not increasing ({} then {})",
                    family.name, pair[0].0, pair[1].0
                ));
            }
            if pair[0].1 > pair[1].1 {
                return Err(format!(
                    "{}: series {series} bucket counts decrease ({} then {})",
                    family.name, pair[0].1, pair[1].1
                ));
            }
        }
        let Some(&(last_bound, last_count)) = entries.last() else {
            continue;
        };
        if last_bound != f64::INFINITY {
            return Err(format!(
                "{}: series {series} is missing the +Inf bucket",
                family.name
            ));
        }
        let Some(&total) = counts.get(series) else {
            return Err(format!(
                "{}: series {series} has buckets but no _count",
                family.name
            ));
        };
        if last_count != total {
            return Err(format!(
                "{}: series {series} +Inf bucket ({last_count}) != _count ({total})",
                family.name
            ));
        }
        if !sums.contains_key(series) {
            return Err(format!(
                "{}: series {series} has buckets but no _sum",
                family.name
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counters_gauges_and_labels() {
        let doc = "\
# HELP mpss_x_total things\n\
# TYPE mpss_x_total counter\n\
mpss_x_total{track=\"main\"} 5\n\
mpss_x_total{track=\"worker-0\"} 2\n\
# HELP mpss_g a gauge\n\
# TYPE mpss_g gauge\n\
mpss_g 1.5\n";
        let expo = parse_exposition(doc).unwrap();
        assert_eq!(expo.families.len(), 2);
        let x = expo.family("mpss_x_total").unwrap();
        assert_eq!(x.kind, "counter");
        assert_eq!(x.help, "things");
        assert_eq!(x.samples.len(), 2);
        assert_eq!(
            x.sample("mpss_x_total", &[("track", "main")])
                .unwrap()
                .value,
            5.0
        );
        assert_eq!(expo.family("mpss_g").unwrap().samples[0].value, 1.5);
    }

    #[test]
    fn decodes_escaped_label_values() {
        let doc = "\
# HELP m h\n\
# TYPE m gauge\n\
m{v=\"a\\\\b\\\"c\\nd\"} 1\n";
        let expo = parse_exposition(doc).unwrap();
        let sample = &expo.family("m").unwrap().samples[0];
        assert_eq!(sample.label("v"), Some("a\\b\"c\nd"));
    }

    #[test]
    fn duplicate_series_is_an_error() {
        let doc = "\
# HELP m h\n\
# TYPE m counter\n\
m{a=\"1\"} 1\n\
m{a=\"1\"} 2\n";
        let err = parse_exposition(doc).unwrap_err();
        assert!(err.contains("duplicate series"), "{err}");
    }

    #[test]
    fn orphan_samples_are_an_error() {
        let err = parse_exposition("mystery_metric 1\n").unwrap_err();
        assert!(err.contains("no # TYPE family"), "{err}");
    }

    #[test]
    fn histogram_counts_must_be_cumulative() {
        let doc = "\
# HELP h x\n\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 5\n\
h_bucket{le=\"2\"} 3\n\
h_bucket{le=\"+Inf\"} 3\n\
h_sum 4\n\
h_count 3\n";
        let err = parse_exposition(doc).unwrap_err();
        assert!(err.contains("counts decrease"), "{err}");
    }

    #[test]
    fn histogram_needs_inf_bucket_matching_count() {
        let missing_inf = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 2\n\
h_sum 1\n\
h_count 2\n";
        assert!(parse_exposition(missing_inf)
            .unwrap_err()
            .contains("+Inf bucket"));
        let mismatched = "\
# TYPE h histogram\n\
h_bucket{le=\"+Inf\"} 2\n\
h_sum 1\n\
h_count 3\n";
        assert!(parse_exposition(mismatched)
            .unwrap_err()
            .contains("!= _count"));
    }

    #[test]
    fn special_values_parse() {
        let doc = "\
# TYPE g gauge\n\
g{k=\"inf\"} +Inf\n\
g{k=\"ninf\"} -Inf\n\
g{k=\"nan\"} NaN\n";
        let expo = parse_exposition(doc).unwrap();
        let g = expo.family("g").unwrap();
        assert_eq!(g.sample("g", &[("k", "inf")]).unwrap().value, f64::INFINITY);
        assert!(g.sample("g", &[("k", "nan")]).unwrap().value.is_nan());
    }
}
