//! A zero-dependency leveled structured logger emitting NDJSON records.
//!
//! The daemon needs a black-box log that costs nothing when quiet and never
//! blocks the replan path: each record is one JSON object per line with a
//! monotonic timestamp (nanoseconds since the logger's epoch — wall clocks
//! can step backwards, replan latencies cannot), a level, a target, a
//! message, and structured key-value fields.
//!
//! Records flow to [`LogSink`]s. Two are built in:
//!
//! * [`StderrSink`] — renders each record to standard error, for operators
//!   tailing the daemon;
//! * [`RingSink`] — a bounded in-memory ring sharing the flight-recorder
//!   discipline: fixed capacity, oldest-out eviction, and a `dropped_total`
//!   counter so the bound is observable. Postmortem bundles embed its
//!   contents.
//!
//! A [`Logger`] is cheap to clone (sinks live behind `Arc<Mutex<..>>`) and
//! records below its level short-circuit before any allocation.
//!
//! ```
//! use mpss_obs::json::Json;
//! use mpss_obs::log::{Level, Logger, RingSink};
//!
//! let ring = RingSink::new(8);
//! let log = Logger::new(Level::Info).with_sink(ring.clone());
//! log.info("daemon", "tenant opened", &[("tenant", Json::from("acme"))]);
//! log.debug("daemon", "suppressed", &[]); // below Info: free
//! let lines = ring.lines();
//! assert_eq!(lines.len(), 1);
//! assert!(lines[0].contains("\"tenant\":\"acme\""));
//! ```

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// Log severity, ordered: `Trace < Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Fine-grained flow tracing.
    Trace,
    /// Diagnostic detail useful when chasing a specific bug.
    Debug,
    /// Normal operational events (tenant opened, checkpoint written).
    Info,
    /// Something surprising that the daemon recovered from.
    Warn,
    /// A request or subsystem failed.
    Error,
}

impl Level {
    /// All levels, ascending.
    pub const ALL: [Level; 5] = [
        Level::Trace,
        Level::Debug,
        Level::Info,
        Level::Warn,
        Level::Error,
    ];

    /// The wire/flag spelling: `"trace"`, `"debug"`, `"info"`, `"warn"`,
    /// `"error"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a flag spelling back into a level.
    pub fn parse(text: &str) -> Option<Level> {
        Level::ALL.into_iter().find(|l| l.as_str() == text)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured log record: what happened, when (monotonic), how bad, and
/// the structured context it happened in.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Nanoseconds since the emitting [`Logger`]'s epoch (monotonic).
    pub ts_ns: u64,
    /// Severity.
    pub level: Level,
    /// The subsystem that emitted the record, e.g. `"serve.daemon"`.
    pub target: String,
    /// Human-readable event description.
    pub message: String,
    /// Structured context, preserved in field order.
    pub fields: Vec<(String, Json)>,
}

impl LogRecord {
    /// The record as a JSON object: `ts_ns`, `level`, `target`, `msg`, then
    /// the fields inline (fields never shadow the four envelope keys — the
    /// logger prefixes a colliding field with `field.`).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.push("ts_ns", Json::from(self.ts_ns));
        obj.push("level", Json::from(self.level.as_str()));
        obj.push("target", Json::from(self.target.as_str()));
        obj.push("msg", Json::from(self.message.as_str()));
        for (key, value) in &self.fields {
            if matches!(key.as_str(), "ts_ns" | "level" | "target" | "msg") {
                obj.push(&format!("field.{key}"), value.clone());
            } else {
                obj.push(key, value.clone());
            }
        }
        obj
    }

    /// The record as one NDJSON line (no trailing newline).
    pub fn render_line(&self) -> String {
        self.to_json().render()
    }
}

/// Where rendered records go. Sinks receive every record at or above the
/// logger's level; filtering finer than that is the sink's business.
pub trait LogSink: Send {
    /// Consumes one record.
    fn write(&mut self, record: &LogRecord);
}

/// Renders each record as an NDJSON line on standard error.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrSink;

impl LogSink for StderrSink {
    fn write(&mut self, record: &LogRecord) {
        // A dead stderr must not take the daemon down with it.
        let _ = writeln!(std::io::stderr().lock(), "{}", record.render_line());
    }
}

#[derive(Debug)]
struct Ring {
    capacity: usize,
    lines: std::collections::VecDeque<String>,
    dropped_total: u64,
}

/// A bounded ring of rendered NDJSON lines. Cloning shares the buffer, so
/// one handle can sit in the logger while another drains into a postmortem
/// bundle.
#[derive(Clone, Debug)]
pub struct RingSink {
    ring: Arc<Mutex<Ring>>,
}

impl RingSink {
    /// A ring holding at most `capacity` lines (clamped to at least 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            ring: Arc::new(Mutex::new(Ring {
                capacity: capacity.max(1),
                lines: std::collections::VecDeque::new(),
                dropped_total: 0,
            })),
        }
    }

    /// The retained lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.ring.lock().unwrap().lines.iter().cloned().collect()
    }

    /// Lines evicted to stay within capacity, ever.
    pub fn dropped_total(&self) -> u64 {
        self.ring.lock().unwrap().dropped_total
    }

    /// Currently retained line count (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().lines.len()
    }

    /// `true` when no lines are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl LogSink for RingSink {
    fn write(&mut self, record: &LogRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.lines.len() == ring.capacity {
            ring.lines.pop_front();
            ring.dropped_total += 1;
        }
        let line = record.render_line();
        ring.lines.push_back(line);
    }
}

struct Inner {
    sinks: Vec<Box<dyn LogSink>>,
}

/// The leveled front end: owns the monotonic epoch and the sink fan-out.
///
/// Cloning is cheap and clones share sinks, the epoch, and the record
/// counter — the daemon hands one logger to every subsystem.
#[derive(Clone)]
pub struct Logger {
    level: Level,
    epoch: Instant,
    /// Kept outside the sink mutex so idle-path polling (the daemon reads
    /// it after every request) is a plain atomic load.
    records_total: Arc<AtomicU64>,
    inner: Arc<Mutex<Inner>>,
}

impl Logger {
    /// A logger with no sinks: records at or above `level` are counted but
    /// go nowhere until a sink is attached.
    pub fn new(level: Level) -> Logger {
        Logger {
            level,
            epoch: Instant::now(),
            records_total: Arc::new(AtomicU64::new(0)),
            inner: Arc::new(Mutex::new(Inner { sinks: Vec::new() })),
        }
    }

    /// Attaches a sink; builder-style.
    pub fn with_sink<S: LogSink + 'static>(self, sink: S) -> Logger {
        self.inner.lock().unwrap().sinks.push(Box::new(sink));
        self
    }

    /// The minimum level this logger emits.
    pub fn level(&self) -> Level {
        self.level
    }

    /// `true` if a record at `level` would be emitted.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        level >= self.level
    }

    /// Records emitted (not level-suppressed), ever.
    pub fn records_total(&self) -> u64 {
        self.records_total.load(Ordering::Relaxed)
    }

    /// Emits one record. Below-level calls return before allocating.
    pub fn log(&self, level: Level, target: &str, message: &str, fields: &[(&str, Json)]) {
        if !self.enabled(level) {
            return;
        }
        let record = LogRecord {
            ts_ns: self.epoch.elapsed().as_nanos() as u64,
            level,
            target: target.to_string(),
            message: message.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        self.records_total.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        for sink in &mut inner.sinks {
            sink.write(&record);
        }
    }

    /// [`log`](Logger::log) at [`Level::Trace`].
    pub fn trace(&self, target: &str, message: &str, fields: &[(&str, Json)]) {
        self.log(Level::Trace, target, message, fields);
    }

    /// [`log`](Logger::log) at [`Level::Debug`].
    pub fn debug(&self, target: &str, message: &str, fields: &[(&str, Json)]) {
        self.log(Level::Debug, target, message, fields);
    }

    /// [`log`](Logger::log) at [`Level::Info`].
    pub fn info(&self, target: &str, message: &str, fields: &[(&str, Json)]) {
        self.log(Level::Info, target, message, fields);
    }

    /// [`log`](Logger::log) at [`Level::Warn`].
    pub fn warn(&self, target: &str, message: &str, fields: &[(&str, Json)]) {
        self.log(Level::Warn, target, message, fields);
    }

    /// [`log`](Logger::log) at [`Level::Error`].
    pub fn error(&self, target: &str, message: &str, fields: &[(&str, Json)]) {
        self.log(Level::Error, target, message, fields);
    }
}

impl fmt::Debug for Logger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_parse_and_render() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Warn < Level::Error);
        for level in Level::ALL {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn below_level_records_are_suppressed() {
        let ring = RingSink::new(4);
        let log = Logger::new(Level::Warn).with_sink(ring.clone());
        log.info("t", "quiet", &[]);
        log.warn("t", "loud", &[]);
        assert_eq!(log.records_total(), 1);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn records_render_as_parseable_ndjson_with_fields() {
        let ring = RingSink::new(4);
        let log = Logger::new(Level::Trace).with_sink(ring.clone());
        log.error(
            "serve.daemon",
            "replan failed",
            &[("tenant", Json::from("t0")), ("jobs", Json::from(3u64))],
        );
        let lines = ring.lines();
        let parsed = Json::parse(&lines[0]).expect("ndjson line parses");
        assert_eq!(parsed.get("level"), Some(&Json::from("error")));
        assert_eq!(parsed.get("target"), Some(&Json::from("serve.daemon")));
        assert_eq!(parsed.get("msg"), Some(&Json::from("replan failed")));
        assert_eq!(parsed.get("tenant"), Some(&Json::from("t0")));
        assert_eq!(parsed.get("jobs"), Some(&Json::from(3u64)));
        assert!(parsed.get("ts_ns").is_some());
    }

    #[test]
    fn envelope_keys_never_collide_with_fields() {
        let record = LogRecord {
            ts_ns: 7,
            level: Level::Info,
            target: "t".into(),
            message: "m".into(),
            fields: vec![("level".into(), Json::from("spoofed"))],
        };
        let json = record.to_json();
        assert_eq!(json.get("level"), Some(&Json::from("info")));
        assert_eq!(json.get("field.level"), Some(&Json::from("spoofed")));
    }

    #[test]
    fn ring_sink_bounds_and_counts_drops() {
        let ring = RingSink::new(2);
        let log = Logger::new(Level::Trace).with_sink(ring.clone());
        for i in 0..5 {
            log.info("t", &format!("m{i}"), &[]);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped_total(), 3);
        let lines = ring.lines();
        assert!(lines[0].contains("m3") && lines[1].contains("m4"));
    }

    #[test]
    fn clones_share_sinks_and_counters() {
        let ring = RingSink::new(4);
        let log = Logger::new(Level::Info).with_sink(ring.clone());
        let clone = log.clone();
        clone.info("t", "via clone", &[]);
        assert_eq!(log.records_total(), 1);
        assert_eq!(ring.len(), 1);
    }
}
