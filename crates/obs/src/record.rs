//! The recording collector and its JSON run report.

use crate::hist::Histogram;
use crate::json::Json;
use crate::Collector;
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// One completed span: a named, timed region with nested children.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name, as passed to [`Collector::span_start`].
    pub name: &'static str,
    /// Wall-clock duration, monotonic clock.
    pub duration_ns: u64,
    /// Spans opened and closed while this one was open, in order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Duration in milliseconds.
    pub fn millis(&self) -> f64 {
        self.duration_ns as f64 / 1e6
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.push("name", Json::from(self.name));
        obj.push("ms", Json::Num(self.millis()));
        if !self.children.is_empty() {
            obj.push(
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            );
        }
        obj
    }
}

/// A [`Collector`] that records everything: the span tree (with
/// monotonic-clock durations), counters, and histograms. Every completed
/// span's duration is additionally folded into the histogram
/// `span.<name>.ms`, so repeated spans (one per phase, one per arrival)
/// aggregate into latency distributions for free.
#[derive(Debug, Default)]
pub struct RecordingCollector {
    roots: Vec<SpanNode>,
    open: Vec<(SpanNode, Instant)>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Collector for RecordingCollector {
    fn span_start(&mut self, name: &'static str) {
        let node = SpanNode {
            name,
            duration_ns: 0,
            children: Vec::new(),
        };
        self.open.push((node, Instant::now()));
    }

    fn span_end(&mut self, name: &'static str) {
        let Some((mut node, started)) = self.open.pop() else {
            debug_assert!(false, "span_end(\"{name}\") without a matching span_start");
            return;
        };
        debug_assert_eq!(
            node.name, name,
            "span_end name does not match the innermost open span"
        );
        node.duration_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.histograms
            .entry(format!("span.{}.ms", node.name))
            .or_default()
            .record(node.millis());
        match self.open.last_mut() {
            Some((parent, _)) => parent.children.push(node),
            None => self.roots.push(node),
        }
    }

    fn count(&mut self, counter: &'static str, by: u64) {
        *self.counters.entry(counter).or_insert(0) += by;
    }

    fn observe(&mut self, histogram: &'static str, value: f64) {
        self.histograms
            .entry(histogram.to_string())
            .or_default()
            .record(value);
    }

    fn enabled(&self) -> bool {
        true
    }
}

impl RecordingCollector {
    /// Creates an empty recording collector.
    pub fn new() -> RecordingCollector {
        RecordingCollector::default()
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// A histogram by name, if any value was observed under it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Completed top-level spans, in completion order.
    pub fn spans(&self) -> &[SpanNode] {
        &self.roots
    }

    /// Closes any spans left open (e.g. by an error return unwinding past
    /// their `span_end`), so a report can still be produced.
    pub fn close_open_spans(&mut self) {
        while let Some((node, _)) = self.open.last() {
            let name = node.name;
            self.span_end(name);
        }
    }

    /// The run report as a JSON document:
    ///
    /// ```json
    /// {
    ///   "spans": [ { "name": "...", "ms": 1.5, "children": [...] } ],
    ///   "counters": { "offline.maxflow.invocations": 12 },
    ///   "histograms": { "span.oa.replan.ms": { "count": 3, "mean": ... } }
    /// }
    /// ```
    pub fn to_json(&self) -> Json {
        let mut counters = Json::object();
        for (name, value) in &self.counters {
            counters.push(name, Json::UInt(*value));
        }
        let mut histograms = Json::object();
        for (name, hist) in &self.histograms {
            let s = hist.summary();
            let mut h = Json::object();
            h.push("count", Json::UInt(s.count));
            h.push("sum", Json::Num(s.sum));
            h.push("mean", Json::Num(s.mean));
            h.push("min", Json::Num(s.min));
            h.push("max", Json::Num(s.max));
            h.push("p50", Json::Num(s.p50));
            h.push("p90", Json::Num(s.p90));
            h.push("p99", Json::Num(s.p99));
            histograms.push(name, h);
        }
        let mut report = Json::object();
        report.push(
            "spans",
            Json::Arr(self.roots.iter().map(SpanNode::to_json).collect()),
        );
        report.push("counters", counters);
        report.push("histograms", histograms);
        report
    }

    /// Writes the pretty-printed run report to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut rec = RecordingCollector::new();
        rec.count("a", 1);
        rec.count("a", 2);
        rec.count("b", 5);
        assert_eq!(rec.counter("a"), 3);
        assert_eq!(rec.counter("b"), 5);
        assert_eq!(rec.counter("missing"), 0);
        assert_eq!(rec.counters().count(), 2);
    }

    #[test]
    fn spans_nest_and_feed_duration_histograms() {
        let mut rec = RecordingCollector::new();
        rec.span_start("outer");
        rec.span_start("phase");
        rec.span_end("phase");
        rec.span_start("phase");
        rec.span_end("phase");
        rec.span_end("outer");
        assert_eq!(rec.spans().len(), 1);
        let outer = &rec.spans()[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.children.len(), 2);
        assert!(outer.children.iter().all(|c| c.name == "phase"));
        // Two "phase" spans aggregated into one latency histogram.
        assert_eq!(rec.histogram("span.phase.ms").unwrap().count(), 2);
        assert_eq!(rec.histogram("span.outer.ms").unwrap().count(), 1);
        // Durations are monotonic-clock and non-negative.
        assert!(outer.millis() >= 0.0);
    }

    #[test]
    fn close_open_spans_recovers_from_early_exit() {
        let mut rec = RecordingCollector::new();
        rec.span_start("a");
        rec.span_start("b");
        // Simulated error return: nobody called span_end.
        rec.close_open_spans();
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.spans()[0].name, "a");
        assert_eq!(rec.spans()[0].children[0].name, "b");
    }

    #[test]
    fn report_json_contains_all_three_sections() {
        let mut rec = RecordingCollector::new();
        rec.span_start("run");
        rec.count("events", 7);
        rec.observe("latency", 1.0);
        rec.observe("latency", 3.0);
        rec.span_end("run");
        let json = rec.to_json();
        assert_eq!(
            json.get("counters").and_then(|c| c.get("events")),
            Some(&crate::json::Json::UInt(7))
        );
        let hist = json
            .get("histograms")
            .and_then(|h| h.get("latency"))
            .unwrap();
        assert_eq!(hist.get("count"), Some(&crate::json::Json::UInt(2)));
        assert_eq!(hist.get("sum"), Some(&crate::json::Json::Num(4.0)));
        let text = json.render_pretty();
        assert!(text.contains("\"spans\""));
        assert!(text.contains("\"name\": \"run\""));
    }

    #[test]
    fn write_json_produces_a_file() {
        let mut rec = RecordingCollector::new();
        rec.count("x", 1);
        let path = std::env::temp_dir().join("mpss-obs-report-test.json");
        rec.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x\": 1"));
        let _ = std::fs::remove_file(&path);
    }
}
