//! The recording collector and its JSON run report.

use crate::hist::Histogram;
use crate::json::Json;
use crate::{Collector, TrackedCollector};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// Counter recording instrumentation bugs: a [`Collector::span_end`] whose
/// name does not match the innermost open span, or one with no open span at
/// all. Recorded instead of asserting so a buggy instrumentation point
/// degrades the report (with a warning) rather than aborting the run.
pub const SPAN_MISMATCH_COUNTER: &str = "obs.span_mismatch";

/// Counter recording spans still open when the report was produced (an error
/// return unwound past their `span_end`); see
/// [`RecordingCollector::close_open_spans`].
pub const SPAN_UNCLOSED_COUNTER: &str = "obs.span_unclosed";

/// One completed span: a named, timed region with nested children.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name, as passed to [`Collector::span_start`].
    pub name: &'static str,
    /// Wall-clock duration, monotonic clock.
    pub duration_ns: u64,
    /// Spans opened and closed while this one was open, in order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Duration in milliseconds.
    pub fn millis(&self) -> f64 {
        self.duration_ns as f64 / 1e6
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.push("name", Json::from(self.name));
        obj.push("ms", Json::Num(self.millis()));
        if !self.children.is_empty() {
            obj.push(
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            );
        }
        obj
    }
}

/// A [`Collector`] that records everything: the span tree (with
/// monotonic-clock durations), counters, and histograms. Every completed
/// span's duration is additionally folded into the histogram
/// `span.<name>.ms`, so repeated spans (one per phase, one per arrival)
/// aggregate into latency distributions for free.
#[derive(Debug, Default)]
pub struct RecordingCollector {
    roots: Vec<SpanNode>,
    open: Vec<(SpanNode, Instant)>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Collector for RecordingCollector {
    fn span_start(&mut self, name: &'static str) {
        let node = SpanNode {
            name,
            duration_ns: 0,
            children: Vec::new(),
        };
        self.open.push((node, Instant::now()));
    }

    fn span_end(&mut self, name: &'static str) {
        let Some((mut node, started)) = self.open.pop() else {
            // Instrumentation bug, not a data bug: record it and keep going
            // so the rest of the run still produces a report.
            self.count(SPAN_MISMATCH_COUNTER, 1);
            return;
        };
        if node.name != name {
            self.count(SPAN_MISMATCH_COUNTER, 1);
        }
        node.duration_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.histograms
            .entry(format!("span.{}.ms", node.name))
            .or_default()
            .record(node.millis());
        match self.open.last_mut() {
            Some((parent, _)) => parent.children.push(node),
            None => self.roots.push(node),
        }
    }

    fn count(&mut self, counter: &'static str, by: u64) {
        *self.counters.entry(counter).or_insert(0) += by;
    }

    fn observe(&mut self, histogram: &'static str, value: f64) {
        self.histograms
            .entry(histogram.to_string())
            .or_default()
            .record(value);
    }

    fn instant(&mut self, name: &'static str) {
        // An aggregating collector has no timeline; instants fold into the
        // counter of the same name so they still show up in reports.
        self.count(name, 1);
    }

    fn enabled(&self) -> bool {
        true
    }
}

impl TrackedCollector for RecordingCollector {
    type Track = RecordingCollector;

    fn fork(&mut self, _name: &str) -> RecordingCollector {
        RecordingCollector::new()
    }

    fn adopt(&mut self, track: RecordingCollector) {
        self.merge(track);
    }
}

impl RecordingCollector {
    /// Creates an empty recording collector.
    pub fn new() -> RecordingCollector {
        RecordingCollector::default()
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// A histogram by name, if any value was observed under it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Completed top-level spans, in completion order.
    pub fn spans(&self) -> &[SpanNode] {
        &self.roots
    }

    /// Closes any spans left open (e.g. by an error return unwinding past
    /// their `span_end`), so a report can still be produced. Each forced
    /// close is recorded under [`SPAN_UNCLOSED_COUNTER`] and surfaces as a
    /// report warning.
    pub fn close_open_spans(&mut self) {
        while let Some((node, _)) = self.open.last() {
            let name = node.name;
            self.count(SPAN_UNCLOSED_COUNTER, 1);
            self.span_end(name);
        }
    }

    /// Merges another collector's recordings into this one: counters add,
    /// histograms merge (exact moments, concatenated quantile samples), and
    /// `other`'s completed top-level spans append after `self`'s. Open spans
    /// of `other` are force-closed first (a forked worker track should have
    /// none). This is [`TrackedCollector::adopt`] for recording collectors.
    pub fn merge(&mut self, mut other: RecordingCollector) {
        other.close_open_spans();
        for (name, value) in other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (name, hist) in other.histograms {
            self.histograms.entry(name).or_default().merge(&hist);
        }
        self.roots.extend(other.roots);
    }

    /// The run report as a JSON document:
    ///
    /// ```json
    /// {
    ///   "spans": [ { "name": "...", "ms": 1.5, "children": [...] } ],
    ///   "counters": { "offline.maxflow.invocations": 12 },
    ///   "histograms": { "span.oa.replan.ms": { "count": 3, "mean": ... } }
    /// }
    /// ```
    pub fn to_json(&self) -> Json {
        let mut counters = Json::object();
        for (name, value) in &self.counters {
            counters.push(name, Json::UInt(*value));
        }
        let mut histograms = Json::object();
        for (name, hist) in &self.histograms {
            let s = hist.summary();
            let mut h = Json::object();
            h.push("count", Json::UInt(s.count));
            h.push("sum", Json::Num(s.sum));
            h.push("mean", Json::Num(s.mean));
            h.push("min", Json::Num(s.min));
            h.push("max", Json::Num(s.max));
            h.push("p50", Json::Num(s.p50));
            h.push("p90", Json::Num(s.p90));
            h.push("p99", Json::Num(s.p99));
            histograms.push(name, h);
        }
        let mut report = Json::object();
        report.push(
            "spans",
            Json::Arr(self.roots.iter().map(SpanNode::to_json).collect()),
        );
        report.push("counters", counters);
        report.push("histograms", histograms);
        let warnings = self.warnings();
        if !warnings.is_empty() {
            report.push(
                "warnings",
                Json::Arr(warnings.into_iter().map(Json::Str).collect()),
            );
        }
        report
    }

    /// Instrumentation-health warnings for the report: span begin/end
    /// mismatches, spans force-closed at report time, and spans still open.
    fn warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mismatched = self.counter(SPAN_MISMATCH_COUNTER);
        if mismatched > 0 {
            out.push(format!(
                "{mismatched} span_end call(s) did not match the innermost open span"
            ));
        }
        let unclosed = self.counter(SPAN_UNCLOSED_COUNTER);
        if unclosed > 0 {
            out.push(format!(
                "{unclosed} span(s) were still open and force-closed at report time"
            ));
        }
        if !self.open.is_empty() {
            out.push(format!(
                "{} span(s) still open (report produced without close_open_spans)",
                self.open.len()
            ));
        }
        out
    }

    /// Writes the pretty-printed run report to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut rec = RecordingCollector::new();
        rec.count("a", 1);
        rec.count("a", 2);
        rec.count("b", 5);
        assert_eq!(rec.counter("a"), 3);
        assert_eq!(rec.counter("b"), 5);
        assert_eq!(rec.counter("missing"), 0);
        assert_eq!(rec.counters().count(), 2);
    }

    #[test]
    fn spans_nest_and_feed_duration_histograms() {
        let mut rec = RecordingCollector::new();
        rec.span_start("outer");
        rec.span_start("phase");
        rec.span_end("phase");
        rec.span_start("phase");
        rec.span_end("phase");
        rec.span_end("outer");
        assert_eq!(rec.spans().len(), 1);
        let outer = &rec.spans()[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.children.len(), 2);
        assert!(outer.children.iter().all(|c| c.name == "phase"));
        // Two "phase" spans aggregated into one latency histogram.
        assert_eq!(rec.histogram("span.phase.ms").unwrap().count(), 2);
        assert_eq!(rec.histogram("span.outer.ms").unwrap().count(), 1);
        // Durations are monotonic-clock and non-negative.
        assert!(outer.millis() >= 0.0);
    }

    #[test]
    fn close_open_spans_recovers_from_early_exit() {
        let mut rec = RecordingCollector::new();
        rec.span_start("a");
        rec.span_start("b");
        // Simulated error return: nobody called span_end.
        rec.close_open_spans();
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.spans()[0].name, "a");
        assert_eq!(rec.spans()[0].children[0].name, "b");
        // Both forced closes were recorded and warn in the report.
        assert_eq!(rec.counter(SPAN_UNCLOSED_COUNTER), 2);
        let report = rec.to_json().render();
        assert!(report.contains("force-closed"));
    }

    #[test]
    fn unmatched_span_end_is_recorded_not_fatal() {
        let mut rec = RecordingCollector::new();
        // Ending with no span open: counted, otherwise ignored.
        rec.span_end("ghost");
        assert_eq!(rec.counter(SPAN_MISMATCH_COUNTER), 1);
        assert!(rec.spans().is_empty());
        // Ending under the wrong name: counted, span still closes under the
        // name it was opened with.
        rec.span_start("real");
        rec.span_end("wrong");
        assert_eq!(rec.counter(SPAN_MISMATCH_COUNTER), 2);
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.spans()[0].name, "real");
        let report = rec.to_json();
        let warnings = report.get("warnings").unwrap();
        assert!(warnings.render().contains("did not match"));
    }

    #[test]
    fn clean_runs_report_no_warnings() {
        let mut rec = RecordingCollector::new();
        rec.span_start("a");
        rec.span_end("a");
        assert_eq!(rec.to_json().get("warnings"), None);
    }

    #[test]
    fn merge_combines_counters_histograms_and_spans() {
        let mut a = RecordingCollector::new();
        a.count("shared", 1);
        a.count("only_a", 5);
        a.observe("h", 1.0);
        a.span_start("a_span");
        a.span_end("a_span");

        let mut b = RecordingCollector::new();
        b.count("shared", 2);
        b.observe("h", 3.0);
        b.span_start("b_span");
        b.span_end("b_span");

        a.merge(b);
        assert_eq!(a.counter("shared"), 3);
        assert_eq!(a.counter("only_a"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().sum(), 4.0);
        let names: Vec<_> = a.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a_span", "b_span"]);
    }

    #[test]
    fn adopt_is_merge_for_recording_collectors() {
        use crate::TrackedCollector;
        let mut root = RecordingCollector::new();
        let mut track = root.fork("worker-0");
        track.count("work", 4);
        root.adopt(track);
        assert_eq!(root.counter("work"), 4);
    }

    #[test]
    fn report_json_contains_all_three_sections() {
        let mut rec = RecordingCollector::new();
        rec.span_start("run");
        rec.count("events", 7);
        rec.observe("latency", 1.0);
        rec.observe("latency", 3.0);
        rec.span_end("run");
        let json = rec.to_json();
        assert_eq!(
            json.get("counters").and_then(|c| c.get("events")),
            Some(&crate::json::Json::UInt(7))
        );
        let hist = json
            .get("histograms")
            .and_then(|h| h.get("latency"))
            .unwrap();
        assert_eq!(hist.get("count"), Some(&crate::json::Json::UInt(2)));
        assert_eq!(hist.get("sum"), Some(&crate::json::Json::Num(4.0)));
        let text = json.render_pretty();
        assert!(text.contains("\"spans\""));
        assert!(text.contains("\"name\": \"run\""));
    }

    #[test]
    fn write_json_produces_a_file() {
        let mut rec = RecordingCollector::new();
        rec.count("x", 1);
        let path = std::env::temp_dir().join("mpss-obs-report-test.json");
        rec.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x\": 1"));
        let _ = std::fs::remove_file(&path);
    }
}
