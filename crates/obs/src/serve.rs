//! A hand-rolled `/metrics` endpoint on `std::net::TcpListener`.
//!
//! No HTTP crate — the build environment is offline, and a Prometheus
//! scrape needs almost nothing from HTTP: read one request line, answer
//! with a fixed header and the rendered exposition body, close. In the same
//! spirit as the hand-rolled Chrome-trace JSON in the `chrome` module, this
//! module implements exactly that much:
//!
//! * `GET /metrics` (or `GET /`) → `200 OK`,
//!   `Content-Type: text/plain; version=0.0.4`, the output of
//!   [`MetricsHub::render`](crate::MetricsHub::render);
//! * anything else → `404 Not Found`;
//! * one request per connection (`Connection: close`), short read/write
//!   timeouts so a stuck client cannot wedge the serving thread.
//!
//! [`MetricsServer::bind`] accepts `host:0` and reports the actual bound
//! port through [`addr`](MetricsServer::addr), which is what the tests use
//! to avoid fixed-port flakiness. Dropping the server wakes the accept loop
//! with a self-connection and joins the thread.

use crate::MetricsHub;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A background thread serving a [`MetricsHub`] over HTTP text exposition.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, or port `0` for an ephemeral
    /// port) and starts the serving thread.
    pub fn bind(addr: impl ToSocketAddrs, hub: &MetricsHub) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let hub = hub.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("mpss-metrics-serve".into())
                .spawn(move || serve_loop(listener, hub, stop))?
        };
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The actually-bound address (resolves port `0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit. Called by `Drop`;
    /// explicit calls are idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: TcpListener, hub: MetricsHub, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Serve inline: scrapes are rare (seconds apart) and tiny, so one
        // connection at a time keeps the server a single bounded thread.
        let _ = handle_connection(stream, &hub);
    }
}

fn handle_connection(mut stream: TcpStream, hub: &MetricsHub) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    // Read until the end of the request head (or 8 KiB, whichever first).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .map(|line| String::from_utf8_lossy(line).into_owned())
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let (status, content_type, body) = if method == "GET" && (path == "/metrics" || path == "/") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            hub.render(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "only GET /metrics lives here\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A minimal scrape client: `GET {path}` from `addr`, returning the response
/// body. Used by `mpss-cli scrape` and the round-trip tests; errors on
/// non-200 statuses.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> Result<String, String> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address: {e}"))?
        .next()
        .ok_or("address resolved to nothing")?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
        .map_err(|e| format!("socket setup: {e}"))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("read response: {e}"))?;
    let text = String::from_utf8_lossy(&response);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(format!("non-200 response: {status_line}"));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::parse_exposition;

    #[test]
    fn serves_the_hub_and_shuts_down() {
        let hub = MetricsHub::new();
        hub.counter(
            "mpss_serve_test_total",
            "served requests",
            &[("who", "test")],
        )
        .add(3);
        let mut server = MetricsServer::bind("127.0.0.1:0", &hub).expect("bind");
        let addr = server.addr();

        let body = http_get(addr, "/metrics").expect("scrape");
        let expo = parse_exposition(&body).expect("parse");
        let family = expo.family("mpss_serve_test_total").expect("family");
        assert_eq!(family.kind, "counter");
        assert_eq!(
            family
                .sample("mpss_serve_test_total", &[("who", "test")])
                .expect("sample")
                .value,
            3.0
        );

        // Unknown paths 404 (http_get reports the status line).
        let err = http_get(addr, "/nope").unwrap_err();
        assert!(err.contains("404"), "{err}");

        server.shutdown();
        // After shutdown the port stops answering.
        assert!(http_get(addr, "/metrics").is_err());
    }

    #[test]
    fn scrapes_observe_live_updates() {
        let hub = MetricsHub::new();
        let counter = hub.counter("mpss_live_total", "live", &[]);
        let server = MetricsServer::bind("127.0.0.1:0", &hub).expect("bind");
        counter.inc();
        let first = http_get(server.addr(), "/metrics").expect("scrape 1");
        assert!(first.contains("mpss_live_total 1"), "{first}");
        counter.add(4);
        let second = http_get(server.addr(), "/metrics").expect("scrape 2");
        assert!(second.contains("mpss_live_total 5"), "{second}");
    }
}
