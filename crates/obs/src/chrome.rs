//! Chrome Trace Event export for [`TraceCollector`], plus a validator and a
//! collapsed-stack (flamegraph) text export.
//!
//! The JSON object format is the one Perfetto and `chrome://tracing` load:
//! `{"traceEvents": [...]}` where each event carries a phase (`"B"`/`"E"`
//! span pairs, `"i"` instants, `"C"` counter samples, `"M"` metadata),
//! `pid`/`tid` coordinates, and a timestamp in *microseconds*. Every trace
//! track maps to one `tid` under `pid` 1, named via `thread_name` metadata
//! events — so racing engines and pool workers render as separate rows on
//! the shared time axis.

use crate::json::{Json, ParseError};
use crate::trace::{TraceCollector, TraceEvent, TraceEventKind};
use std::collections::BTreeMap;
use std::path::Path;

impl TraceCollector {
    /// The trace as a Chrome Trace Event JSON document.
    pub fn chrome_trace(&self) -> Json {
        let mut events = Vec::new();
        for (tid, name) in self.track_names().iter().enumerate() {
            let mut args = Json::object();
            args.push("name", Json::from(name.as_str()));
            let mut meta = Json::object();
            meta.push("ph", Json::from("M"));
            meta.push("pid", Json::UInt(1));
            meta.push("tid", Json::UInt(tid as u64));
            meta.push("name", Json::from("thread_name"));
            meta.push("args", args);
            events.push(meta);
        }
        // "C" events carry the counter's current value; the trace records
        // deltas, so accumulate per (track, counter) while exporting.
        let mut totals: BTreeMap<(u32, &str), u64> = BTreeMap::new();
        for event in self.events() {
            events.push(chrome_event(event, &mut totals));
        }
        let mut doc = Json::object();
        doc.push("traceEvents", Json::Arr(events));
        doc.push("displayTimeUnit", Json::from("ms"));
        doc
    }

    /// Writes the Chrome Trace Event JSON to `path` (compact — Perfetto does
    /// not care and traces are the largest artifact this crate writes).
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace().render())
    }

    /// The trace as collapsed stacks (`inferno` / `flamegraph.pl` input):
    /// one line per distinct stack, `track;outer;inner <self_time_ns>`,
    /// sorted lexicographically. Self time is the span's duration minus its
    /// children's; unclosed spans are dropped.
    pub fn collapsed_stacks(&self) -> String {
        // Replay each track's B/E stream, attributing self time to stacks.
        let mut weights: BTreeMap<String, u64> = BTreeMap::new();
        let mut stacks: BTreeMap<u32, Vec<(&str, u64, u64)>> = BTreeMap::new();
        for event in self.events() {
            let stack = stacks.entry(event.track).or_default();
            match event.kind {
                TraceEventKind::Begin(name) => stack.push((name, event.ts_ns, 0)),
                TraceEventKind::End(_) => {
                    let Some((name, began, child_ns)) = stack.pop() else {
                        continue;
                    };
                    let total = event.ts_ns.saturating_sub(began);
                    let this = total.saturating_sub(child_ns);
                    if let Some((_, _, parent_child)) = stack.last_mut() {
                        *parent_child += total;
                    }
                    let mut key = self.track_names()[event.track as usize].clone();
                    for (frame, _, _) in stack.iter() {
                        key.push(';');
                        key.push_str(frame);
                    }
                    key.push(';');
                    key.push_str(name);
                    *weights.entry(key).or_insert(0) += this;
                }
                _ => {}
            }
        }
        let mut out = String::new();
        for (stack, ns) in weights {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }
}

fn chrome_event(event: &TraceEvent, totals: &mut BTreeMap<(u32, &'static str), u64>) -> Json {
    let mut obj = Json::object();
    let (ph, name) = match event.kind {
        TraceEventKind::Begin(name) => ("B", name),
        TraceEventKind::End(name) => ("E", name),
        TraceEventKind::Instant(name) => ("i", name),
        TraceEventKind::Count(name, _) => ("C", name),
        TraceEventKind::Value(name, _) => ("C", name),
    };
    obj.push("ph", Json::from(ph));
    obj.push("pid", Json::UInt(1));
    obj.push("tid", Json::UInt(event.track as u64));
    // Trace Event timestamps are double microseconds; nanosecond precision
    // survives in the fraction.
    obj.push("ts", Json::Num(event.ts_ns as f64 / 1e3));
    obj.push("name", Json::from(name));
    match event.kind {
        TraceEventKind::Instant(_) => {
            // Thread-scoped instant: renders as a marker on its own track.
            obj.push("s", Json::from("t"));
        }
        TraceEventKind::Count(counter, by) => {
            let total = totals.entry((event.track, counter)).or_insert(0);
            *total += by;
            let mut args = Json::object();
            args.push("value", Json::UInt(*total));
            obj.push("args", args);
        }
        TraceEventKind::Value(_, value) => {
            let mut args = Json::object();
            args.push("value", Json::Num(value));
            obj.push("args", args);
        }
        _ => {}
    }
    obj
}

/// Summary of a validated Chrome trace, as produced by
/// [`validate_chrome_trace`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Distinct `tid`s that carried at least one non-metadata event.
    pub tracks: usize,
    /// Non-metadata events.
    pub events: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// Deepest `"B"` nesting reached on any single track.
    pub max_depth: usize,
    /// Track names from `thread_name` metadata, in `tid` order.
    pub track_names: Vec<String>,
    /// Total `obs.span_mismatch` count carried by the trace (the last
    /// cumulative `"C"` sample per track, summed). Non-zero means some
    /// `span_end` closed the wrong span — `mpss-cli trace-check` fails on
    /// it.
    pub span_mismatches: u64,
}

/// Parses `text` as Chrome Trace Event JSON and checks the invariants the
/// exporter promises: every event has `ph`/`pid`/`tid`/`ts`/`name`,
/// timestamps are monotone non-decreasing *per track*, and every track's
/// `"B"`/`"E"` events pair up well-nested with matching names.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = Json::parse(text).map_err(|e: ParseError| format!("not JSON: {e}"))?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    let mut names: BTreeMap<u64, String> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut mismatches: BTreeMap<u64, u64> = BTreeMap::new();
    let mut check = TraceCheck::default();
    for (i, event) in events.iter().enumerate() {
        let ph = match event.get("ph") {
            Some(Json::Str(ph)) => ph.as_str(),
            _ => return Err(format!("event {i}: missing ph")),
        };
        let tid = match event.get("tid") {
            Some(Json::UInt(tid)) => *tid,
            Some(Json::Num(tid)) if *tid >= 0.0 && tid.fract() == 0.0 => *tid as u64,
            _ => return Err(format!("event {i}: missing tid")),
        };
        let name = match event.get("name") {
            Some(Json::Str(name)) => name.clone(),
            _ => return Err(format!("event {i}: missing name")),
        };
        if ph == "M" {
            if name == "thread_name" {
                if let Some(Json::Str(track)) = event.get("args").and_then(|a| a.get("name")) {
                    names.insert(tid, track.clone());
                }
            }
            continue;
        }
        if event.get("pid").is_none() {
            return Err(format!("event {i}: missing pid"));
        }
        let ts = match event.get("ts") {
            Some(Json::Num(ts)) => *ts,
            Some(Json::UInt(ts)) => *ts as f64,
            _ => return Err(format!("event {i}: missing ts")),
        };
        let last = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        if ts < *last {
            return Err(format!(
                "event {i}: ts {ts} goes backwards on tid {tid} (last {last})"
            ));
        }
        *last = ts;
        check.events += 1;
        match ph {
            "B" => {
                let stack = stacks.entry(tid).or_default();
                stack.push(name);
                check.max_depth = check.max_depth.max(stack.len());
            }
            "E" => {
                let stack = stacks.entry(tid).or_default();
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "event {i}: E \"{name}\" closes open span \"{open}\" on tid {tid}"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E \"{name}\" with no open span on tid {tid}"
                        ))
                    }
                }
            }
            "i" => check.instants += 1,
            "C" => {
                let value = match event.get("args").and_then(|a| a.get("value")) {
                    Some(Json::UInt(v)) => *v as f64,
                    Some(Json::Num(v)) => *v,
                    _ => return Err(format!("event {i}: C without numeric args.value")),
                };
                if name == crate::record::SPAN_MISMATCH_COUNTER {
                    // "C" samples are cumulative per track; keep the latest.
                    mismatches.insert(tid, value.max(0.0) as u64);
                }
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span \"{open}\" never closed"));
        }
    }
    check.tracks = last_ts.len();
    check.track_names = names.into_values().collect();
    check.span_mismatches = mismatches.values().sum();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;
    use crate::TrackedCollector;

    fn sample_trace() -> TraceCollector {
        let mut t = TraceCollector::new("main");
        t.span_start("solve");
        t.count("offline.phases", 2);
        let mut w = t.fork("worker-0");
        w.span_start("probe");
        w.instant("race.bail");
        w.span_end("probe");
        t.adopt(w);
        t.observe("flow", 0.5);
        t.span_end("solve");
        t
    }

    #[test]
    fn export_validates_and_counts() {
        let trace = sample_trace();
        let text = trace.chrome_trace().render();
        let check = validate_chrome_trace(&text).expect("exporter output validates");
        assert_eq!(check.tracks, 2);
        assert_eq!(check.instants, 1);
        assert_eq!(check.max_depth, 1);
        assert_eq!(check.track_names, vec!["main", "worker-0"]);
        // 2 spans × (B+E) + 1 instant + 2 counter samples = 7 events.
        assert_eq!(check.events, 7);
    }

    #[test]
    fn counter_samples_accumulate_per_track() {
        let mut t = TraceCollector::new("main");
        t.count("c", 2);
        t.count("c", 3);
        let doc = t.chrome_trace();
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("no traceEvents");
        };
        let values: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph") == Some(&Json::from("C")))
            .map(|e| match e.get("args").and_then(|a| a.get("value")) {
                Some(Json::UInt(v)) => *v,
                other => panic!("bad value {other:?}"),
            })
            .collect();
        assert_eq!(values, vec![2, 5]);
    }

    #[test]
    fn validator_rejects_broken_nesting() {
        let text = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":1.0,"name":"a"},
            {"ph":"E","pid":1,"tid":0,"ts":2.0,"name":"b"}
        ]}"#;
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("closes open span"), "{err}");
    }

    #[test]
    fn validator_rejects_backwards_time_per_track() {
        let text = r#"{"traceEvents":[
            {"ph":"i","pid":1,"tid":0,"ts":5.0,"name":"x","s":"t"},
            {"ph":"i","pid":1,"tid":0,"ts":4.0,"name":"y","s":"t"}
        ]}"#;
        assert!(validate_chrome_trace(text)
            .unwrap_err()
            .contains("backwards"));
        // …but different tracks are independent axes.
        let ok = r#"{"traceEvents":[
            {"ph":"i","pid":1,"tid":0,"ts":5.0,"name":"x","s":"t"},
            {"ph":"i","pid":1,"tid":1,"ts":4.0,"name":"y","s":"t"}
        ]}"#;
        assert!(validate_chrome_trace(ok).is_ok());
    }

    #[test]
    fn validator_rejects_unclosed_spans() {
        let text = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":1.0,"name":"a"}
        ]}"#;
        assert!(validate_chrome_trace(text)
            .unwrap_err()
            .contains("never closed"));
    }

    #[test]
    fn span_mismatch_counters_surface_in_the_check() {
        let clean = sample_trace().chrome_trace().render();
        assert_eq!(
            validate_chrome_trace(&clean).unwrap().span_mismatches,
            0,
            "clean traces carry no mismatches"
        );
        // Two tracks, each with cumulative samples: latest-per-track summed.
        let text = r#"{"traceEvents":[
            {"ph":"C","pid":1,"tid":0,"ts":1.0,"name":"obs.span_mismatch","args":{"value":1}},
            {"ph":"C","pid":1,"tid":0,"ts":2.0,"name":"obs.span_mismatch","args":{"value":2}},
            {"ph":"C","pid":1,"tid":1,"ts":1.5,"name":"obs.span_mismatch","args":{"value":3}}
        ]}"#;
        let check = validate_chrome_trace(text).unwrap();
        assert_eq!(check.span_mismatches, 5);
    }

    #[test]
    fn collapsed_stacks_attribute_self_time() {
        let trace = sample_trace();
        let folded = trace.collapsed_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().any(|l| l.starts_with("main;solve ")));
        assert!(lines.iter().any(|l| l.starts_with("worker-0;probe ")));
        for line in lines {
            let weight: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            let _ = weight; // parses as an integer nanosecond weight
        }
    }
}
