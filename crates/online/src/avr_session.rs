//! AVR(m) as a live session.
//!
//! AVR's decisions are *memoryless*: at any instant the processor speeds
//! depend only on the currently active jobs' densities (Fig. 3 is evaluated
//! interval by interval). That makes the session form particularly simple —
//! no replanning state, just the active set — and it makes AVR attractive
//! for controllers that cannot afford OA's optimal replans.

use crate::avr::avr_schedule;
use crate::checkpoint::{AvrCheckpoint, CheckpointError, CHECKPOINT_VERSION};
use crate::session::ReplanSummary;
use crate::session_metrics::SessionMetrics;
use mpss_core::{Instance, Job, JobId, ModelError, Schedule, Segment};

/// A live AVR(m) scheduling session.
///
/// ```
/// use mpss_online::AvrSession;
///
/// let mut session = AvrSession::new(2, 0.0);
/// session.arrive(1.0, 4.0).unwrap();          // density 4: gets peeled
/// session.arrive(1.0, 1.0).unwrap();          // density 1
/// session.arrive(1.0, 1.0).unwrap();          // density 1
/// assert_eq!(session.current_speeds(), vec![4.0, 2.0]);
/// let schedule = session.finish().unwrap();
/// assert!((schedule.total_work() - 6.0).abs() < 1e-9);
/// ```
pub struct AvrSession {
    m: usize,
    now: f64,
    jobs: Vec<Job<f64>>,
    executed: Schedule<f64>,
    /// Everything executed strictly before this time was compacted away.
    compaction_watermark: Option<f64>,
    compacted_segments: usize,
    compacted_work: f64,
    metrics: Option<SessionMetrics>,
    /// Memoized batch plan — [`avr_schedule`] is a pure function of the
    /// job list, so the plan is recomputed only when an arrival invalidates
    /// it; pure clock advances (the `mpss-serve` broadcast-tick hot path)
    /// just slice it. Not checkpointed: restore recomputes on the next
    /// advance, bit-identically.
    plan: Option<Schedule<f64>>,
    plans_computed: usize,
    /// The most recent plan evaluation's cost summary (see
    /// [`ReplanSummary`]); AVR has no flow network, so only latency,
    /// work (profile segments peeled, the closest analogue), and the live
    /// count are meaningful. Not checkpointed.
    last_replan: Option<ReplanSummary>,
}

impl AvrSession {
    /// Opens a session on `m` processors with the clock at `start`.
    pub fn new(m: usize, start: f64) -> AvrSession {
        assert!(m >= 1);
        AvrSession {
            m,
            now: start,
            jobs: Vec::new(),
            executed: Schedule::new(m),
            compaction_watermark: None,
            compacted_segments: 0,
            compacted_work: 0.0,
            metrics: None,
            plan: None,
            plans_computed: 0,
            last_replan: None,
        }
    }

    /// Attaches a live metrics bundle (see [`SessionMetrics::register`]).
    /// AVR is memoryless, so there is no replan latency to report; the
    /// bundle's replan counter still ticks once per arrival (each arrival
    /// changes the Fig. 3 decision) and the gauges track the active set.
    pub fn attach_metrics(&mut self, metrics: SessionMetrics) {
        self.metrics = Some(metrics);
        self.publish_metrics();
    }

    fn publish_metrics(&self) {
        if let Some(metrics) = &self.metrics {
            let active: Vec<&Job<f64>> = self
                .jobs
                .iter()
                .filter(|j| j.release <= self.now && self.now < j.deadline)
                .collect();
            // AVR does not track per-job progress; "queued" is the total
            // volume of jobs whose windows are still open.
            let queued = active.iter().map(|j| j.volume).sum();
            metrics.publish(self.now, active.len(), queued, &self.current_speeds());
        }
    }

    /// Current clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of processors.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of jobs announced so far (session job ids are `0..job_count()`).
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Announces a job arriving now. Returns its session id.
    pub fn arrive(&mut self, deadline: f64, volume: f64) -> Result<JobId, ModelError> {
        let job = Job::new(self.now, deadline, volume);
        Instance::new(self.m, vec![job])?;
        self.jobs.push(job);
        // The arrival changes the Fig. 3 decision: drop the memoized plan.
        self.plan = None;
        if let Some(metrics) = &self.metrics {
            metrics.on_arrival();
            metrics.on_replan(0.0);
        }
        self.publish_metrics();
        Ok(self.jobs.len() - 1)
    }

    /// The speed AVR assigns each processor right now: peel over-dense
    /// actives, share the rest (the instantaneous Fig. 3 decision).
    pub fn current_speeds(&self) -> Vec<f64> {
        let mut densities: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| j.release <= self.now && self.now < j.deadline)
            .map(|j| j.density())
            .collect();
        densities.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut speeds = vec![0.0; self.m];
        let mut total: f64 = densities.iter().sum();
        let mut m_left = self.m;
        let mut idx = 0;
        while idx < densities.len() && m_left > 0 && densities[idx] > total / m_left as f64 {
            speeds[self.m - m_left] = densities[idx];
            total -= densities[idx];
            m_left -= 1;
            idx += 1;
        }
        if idx < densities.len() && m_left > 0 {
            let share = total / m_left as f64;
            for s in speeds.iter_mut().skip(self.m - m_left) {
                *s = share;
            }
        }
        speeds
    }

    /// Advances the clock to `t`, committing AVR's execution over
    /// `[now, t)`. Because AVR is memoryless, this simply evaluates the
    /// full AVR schedule of the jobs seen so far restricted to the window —
    /// identical to what instant-by-instant simulation would produce. The
    /// evaluation is memoized per job list: only the first advance after an
    /// arrival recomputes the plan
    /// (see [`plans_computed`](AvrSession::plans_computed)); further
    /// advances slice the cached schedule in O(committed segments).
    pub fn advance_to(&mut self, t: f64) -> Result<(), ModelError> {
        assert!(t >= self.now, "clock cannot move backwards");
        if !self.jobs.is_empty() {
            if self.plan.is_none() {
                let started = std::time::Instant::now();
                let instance = Instance::new(self.m, self.jobs.clone())?;
                let plan = avr_schedule(&instance);
                self.last_replan = Some(ReplanSummary {
                    latency_s: started.elapsed().as_secs_f64(),
                    work_ops: plan.segments.len() as u64,
                    live_jobs: self
                        .jobs
                        .iter()
                        .filter(|j| j.release <= self.now && self.now < j.deadline)
                        .count(),
                    ..ReplanSummary::default()
                });
                self.plan = Some(plan);
                self.plans_computed += 1;
            }
            let full = self.plan.as_ref().expect("plan memoized above");
            for seg in full.restrict(self.now, t).segments {
                self.executed.push(Segment { ..seg });
            }
        }
        self.now = t;
        self.publish_metrics();
        Ok(())
    }

    /// How many times the session actually evaluated the AVR plan — at most
    /// once per arrival, however many clock advances were driven. (A
    /// restored session recomputes once on its first advance.)
    pub fn plans_computed(&self) -> usize {
        self.plans_computed
    }

    /// The most recent plan evaluation's cost summary (`None` until the
    /// first post-arrival advance computes a plan). Process-level state:
    /// checkpoints do not carry it.
    pub fn last_replan(&self) -> Option<ReplanSummary> {
        self.last_replan
    }

    /// Takes the most recent plan evaluation's summary, leaving `None` —
    /// the daemon drains this into the flight recorder exactly once per
    /// evaluation.
    pub fn take_last_replan(&mut self) -> Option<ReplanSummary> {
        self.last_replan.take()
    }

    /// Committed history so far (from the compaction watermark on, once
    /// [`compact_history`](AvrSession::compact_history) has run).
    pub fn executed(&self) -> &Schedule<f64> {
        &self.executed
    }

    /// Drops executed history strictly before `watermark` (clamped to
    /// `now`), bounding memory for long-running sessions. Same contract as
    /// [`OaSession::compact_history`](crate::OaSession::compact_history):
    /// only whole segments ending at or before the watermark drop, the
    /// dropped count and work stay available via
    /// [`compacted_segments`](AvrSession::compacted_segments) /
    /// [`compacted_work`](AvrSession::compacted_work), and scheduling
    /// decisions are unaffected (AVR is memoryless).
    pub fn compact_history(&mut self, watermark: f64) -> usize {
        let effective = watermark
            .min(self.now)
            .max(self.compaction_watermark.unwrap_or(f64::MIN));
        let before = self.executed.segments.len();
        let mut dropped_work = 0.0;
        self.executed.segments.retain(|seg| {
            if seg.end <= effective {
                dropped_work += seg.work();
                false
            } else {
                true
            }
        });
        let dropped = before - self.executed.segments.len();
        self.compacted_segments += dropped;
        self.compacted_work += dropped_work;
        self.compaction_watermark = Some(effective);
        dropped
    }

    /// Everything executed strictly before this time has been compacted
    /// away (`None`: never compacted, the history is complete).
    pub fn compaction_watermark(&self) -> Option<f64> {
        self.compaction_watermark
    }

    /// Segments dropped by compaction over the session's lifetime.
    pub fn compacted_segments(&self) -> usize {
        self.compacted_segments
    }

    /// Work (volume units) carried by the compacted segments.
    pub fn compacted_work(&self) -> f64 {
        self.compacted_work
    }

    /// Freezes the full session state into a serializable, versioned
    /// [`AvrCheckpoint`]. Metrics handles are not part of the state —
    /// re-attach after [`restore`](AvrSession::restore).
    pub fn checkpoint(&self) -> AvrCheckpoint {
        AvrCheckpoint {
            version: CHECKPOINT_VERSION,
            m: self.m,
            now: self.now,
            jobs: self.jobs.clone(),
            executed: self.executed.clone(),
            compaction_watermark: self.compaction_watermark,
            compacted_segments: self.compacted_segments,
            compacted_work: self.compacted_work,
        }
    }

    /// Resumes a session from a checkpoint, bit-identically: AVR's
    /// decisions are a pure function of the job set and the clock, both of
    /// which the checkpoint carries in full.
    pub fn restore(checkpoint: AvrCheckpoint) -> Result<AvrSession, CheckpointError> {
        checkpoint.validate()?;
        Ok(AvrSession {
            m: checkpoint.m,
            now: checkpoint.now,
            jobs: checkpoint.jobs,
            executed: checkpoint.executed,
            compaction_watermark: checkpoint.compaction_watermark,
            compacted_segments: checkpoint.compacted_segments,
            compacted_work: checkpoint.compacted_work,
            metrics: None,
            plan: None,
            plans_computed: 0,
            last_replan: None,
        })
    }

    /// Runs to the last deadline and returns the full schedule.
    pub fn finish(mut self) -> Result<Schedule<f64>, ModelError> {
        let horizon = self
            .jobs
            .iter()
            .map(|j| j.deadline)
            .fold(self.now, f64::max);
        self.advance_to(horizon)?;
        let mut s = self.executed;
        s.normalize();
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::energy::schedule_energy;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::validate::assert_feasible;

    #[test]
    fn session_replays_batch_avr() {
        let ins = Instance::new(
            2,
            vec![job(0.0, 4.0, 4.0), job(0.0, 2.0, 2.0), job(1.0, 3.0, 2.0)],
        )
        .unwrap();
        let batch = avr_schedule(&ins);

        let mut s = AvrSession::new(2, 0.0);
        s.arrive(4.0, 4.0).unwrap();
        s.arrive(2.0, 2.0).unwrap();
        s.advance_to(1.0).unwrap();
        s.arrive(3.0, 2.0).unwrap();
        let sched = s.finish().unwrap();

        assert_feasible(&ins, &sched, 1e-9);
        let p = Polynomial::new(2.0);
        let a = schedule_energy(&batch, &p);
        let b = schedule_energy(&sched, &p);
        assert!(
            (a - b).abs() <= 1e-9 * a.max(1.0),
            "batch {a} vs session {b}"
        );
    }

    #[test]
    fn current_speeds_follow_fig3_peeling() {
        let mut s = AvrSession::new(2, 0.0);
        s.arrive(1.0, 4.0).unwrap(); // density 4
        s.arrive(1.0, 1.0).unwrap(); // density 1
        s.arrive(1.0, 1.0).unwrap(); // density 1
        let speeds = s.current_speeds();
        // Peel the 4; the two 1s share speed 2 on the other processor.
        assert_eq!(speeds, vec![4.0, 2.0]);
    }

    #[test]
    fn memorylessness_past_jobs_do_not_affect_speeds() {
        let mut s = AvrSession::new(1, 0.0);
        s.arrive(1.0, 3.0).unwrap();
        s.advance_to(2.0).unwrap(); // job expired
        assert_eq!(s.current_speeds(), vec![0.0]);
        s.arrive(4.0, 2.0).unwrap();
        assert_eq!(s.current_speeds(), vec![1.0]);
    }

    #[test]
    fn attached_metrics_track_the_active_set() {
        use mpss_obs::{MetricsHub, SnapshotValue};
        let hub = MetricsHub::new();
        let mut s = AvrSession::new(2, 0.0);
        s.attach_metrics(crate::SessionMetrics::register(&hub, "avr", 2));
        s.arrive(1.0, 4.0).unwrap();
        s.arrive(1.0, 1.0).unwrap();
        s.advance_to(2.0).unwrap(); // both windows closed

        let value = |name: &str| {
            hub.snapshot()
                .into_iter()
                .find(|row| row.name == name)
                .unwrap_or_else(|| panic!("{name} not registered"))
                .value
        };
        match value("mpss_session_arrivals_total") {
            SnapshotValue::Counter(n) => assert_eq!(n, 2),
            other => panic!("arrivals: {other:?}"),
        }
        match value("mpss_session_active_jobs") {
            SnapshotValue::Gauge(n) => assert_eq!(n, 0.0),
            other => panic!("active: {other:?}"),
        }
        match value("mpss_session_queued_volume") {
            SnapshotValue::Gauge(v) => assert_eq!(v, 0.0),
            other => panic!("queued: {other:?}"),
        }
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let drive_prefix = |s: &mut AvrSession| {
            s.arrive(4.0, 4.0).unwrap();
            s.arrive(2.0, 2.0).unwrap();
            s.advance_to(1.0).unwrap();
        };
        let drive_suffix = |mut s: AvrSession| {
            s.arrive(3.0, 2.0).unwrap();
            s.advance_to(2.5).unwrap();
            s.finish().unwrap()
        };

        let mut uninterrupted = AvrSession::new(2, 0.0);
        drive_prefix(&mut uninterrupted);
        let expected = drive_suffix(uninterrupted);

        let mut killed = AvrSession::new(2, 0.0);
        drive_prefix(&mut killed);
        let frozen = killed.checkpoint().to_json().render();
        drop(killed);
        let thawed =
            AvrCheckpoint::from_json(&mpss_obs::json::Json::parse(&frozen).unwrap()).unwrap();
        let restored = AvrSession::restore(thawed).unwrap();
        let actual = drive_suffix(restored);
        assert_eq!(expected.segments, actual.segments);
    }

    #[test]
    fn advances_between_arrivals_reuse_the_memoized_plan() {
        // Many fine-grained ticks (the serve broadcast pattern) between two
        // arrivals: the plan is evaluated once per arrival, and the
        // committed schedule equals the coarse-tick session's exactly.
        let mut fine = AvrSession::new(2, 0.0);
        fine.arrive(4.0, 4.0).unwrap();
        for k in 1..=10 {
            fine.advance_to(0.1 * k as f64).unwrap();
        }
        fine.arrive(3.0, 2.0).unwrap();
        for k in 11..=20 {
            fine.advance_to(0.1 * k as f64).unwrap();
        }
        assert_eq!(fine.plans_computed(), 2);

        let mut coarse = AvrSession::new(2, 0.0);
        coarse.arrive(4.0, 4.0).unwrap();
        coarse.advance_to(1.0).unwrap();
        coarse.arrive(3.0, 2.0).unwrap();
        let expected = coarse.finish().unwrap();
        assert_eq!(fine.finish().unwrap().segments, expected.segments);
    }

    #[test]
    fn compaction_conserves_work_in_the_tally() {
        let mut s = AvrSession::new(1, 0.0);
        s.arrive(1.0, 3.0).unwrap();
        s.advance_to(2.0).unwrap();
        s.arrive(4.0, 2.0).unwrap();
        s.advance_to(3.0).unwrap();
        let full = s.executed().total_work();
        let dropped = s.compact_history(2.0);
        assert!(dropped > 0);
        assert!((s.compacted_work() + s.executed().total_work() - full).abs() < 1e-9);
        assert_eq!(s.compaction_watermark(), Some(2.0));
        // Restore keeps the watermark.
        let back = AvrSession::restore(s.checkpoint()).unwrap();
        assert_eq!(back.compaction_watermark(), Some(2.0));
        assert_eq!(back.compacted_segments(), dropped);
    }

    #[test]
    fn empty_session_is_silent() {
        let s = AvrSession::new(2, 0.0);
        assert_eq!(s.current_speeds(), vec![0.0, 0.0]);
        let sched = s.finish().unwrap();
        assert!(sched.is_empty());
    }
}
