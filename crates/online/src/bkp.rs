//! The single-processor BKP algorithm (Bansal–Kimbrel–Pruhs, J. ACM 2007),
//! implemented as the extension discussed in the paper's conclusion: BKP
//! beats Optimal Available for large `α` on one processor
//! (`2(α/(α−1))^α e^α` vs `α^α`), and whether it extends to `m` processors
//! is posed as an open problem. We provide the `m = 1` algorithm so the
//! experiment harness can compare all three online strategies.
//!
//! At time `t`, with `w(t, t1, t2)` the total volume of jobs *released by
//! `t`* whose windows satisfy `r ≥ t1` and `d ≤ t2`, BKP runs at speed
//!
//! ```text
//! s(t) = e · γ(t),    γ(t) = max_{t2 > t}  w(t, e·t − (e−1)·t2, t2) / (e·(t2 − t))
//! ```
//!
//! and processes jobs in EDF order. The speed function is continuous
//! between events; this simulation discretizes each event interval into
//! fixed steps and holds the speed constant per step, with a feasibility
//! safety net (if discretization error would miss a deadline, the step runs
//! at the exact completion speed instead, counted in
//! [`BkpOutcome::forced_speedups`]).

use mpss_core::{Instance, Schedule, Segment};

/// Outcome of a BKP simulation.
#[derive(Clone, Debug)]
pub struct BkpOutcome {
    /// The executed schedule (single processor).
    pub schedule: Schedule<f64>,
    /// Steps where the discretized speed had to be raised to meet a
    /// deadline (0 for fine enough discretizations).
    pub forced_speedups: usize,
}

/// The BKP speed at time `t` given the jobs released so far.
///
/// Candidate `t2` values: every deadline `> t`, and every point where the
/// window `[e·t − (e−1)·t2, t2]` starts touching a release time
/// (`t2 = (e·t − r)/(e−1)`); the maximum of the piecewise-monotone
/// objective is attained at one of these.
pub fn bkp_speed(instance: &Instance<f64>, t: f64) -> f64 {
    let e = std::f64::consts::E;
    let released: Vec<_> = instance
        .jobs
        .iter()
        .filter(|j| j.release <= t + 1e-12)
        .collect();
    if released.is_empty() {
        return 0.0;
    }
    let mut candidates: Vec<f64> = Vec::with_capacity(2 * released.len());
    for j in &released {
        if j.deadline > t {
            candidates.push(j.deadline);
        }
        let t2 = (e * t - j.release) / (e - 1.0);
        if t2 > t {
            candidates.push(t2);
        }
    }
    let mut best = 0.0f64;
    for &t2 in &candidates {
        let t1 = e * t - (e - 1.0) * t2;
        let w: f64 = released
            .iter()
            .filter(|j| j.release >= t1 - 1e-12 && j.deadline <= t2 + 1e-12)
            .map(|j| j.volume)
            .sum();
        let gamma = w / (e * (t2 - t));
        best = best.max(gamma);
    }
    e * best
}

/// Simulates BKP with `steps_per_interval` discretization steps per event
/// interval.
pub fn bkp_schedule(instance: &Instance<f64>, steps_per_interval: usize) -> BkpOutcome {
    assert!(steps_per_interval >= 1);
    assert_eq!(instance.m, 1, "BKP is a single-processor algorithm");
    let mut schedule = Schedule::new(1);
    let mut forced = 0usize;
    if instance.is_empty() {
        return BkpOutcome {
            schedule,
            forced_speedups: 0,
        };
    }
    let intervals = mpss_core::Intervals::from_instance(instance);
    let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.volume).collect();

    for j in 0..intervals.len() {
        let (a, b) = intervals.bounds(j);
        let h = (b - a) / steps_per_interval as f64;
        for step in 0..steps_per_interval {
            let t = a + step as f64 * h;
            let t_next = t + h;
            let mut budget_time = h;
            let mut cursor = t;
            // EDF within the step; the speed may be boosted per job to
            // guarantee deadlines under discretization error.
            while budget_time > 1e-12 {
                // Earliest-deadline released unfinished job.
                let pick = (0..instance.n())
                    .filter(|&k| {
                        instance.jobs[k].release <= cursor + 1e-12
                            && crate::eps::job_is_live(remaining[k], instance.jobs[k].volume)
                    })
                    .min_by(|&x, &y| {
                        instance.jobs[x]
                            .deadline
                            .partial_cmp(&instance.jobs[y].deadline)
                            .unwrap()
                    });
                let Some(k) = pick else { break };
                let mut speed = bkp_speed(instance, cursor);
                // Safety net: never plan to finish after the deadline.
                let slack = (instance.jobs[k].deadline - cursor).max(1e-12);
                let needed = remaining[k] / slack;
                if needed > speed {
                    speed = needed;
                    forced += 1;
                }
                if speed <= 0.0 {
                    break;
                }
                let run = budget_time.min(remaining[k] / speed).max(0.0);
                if run <= 1e-12 {
                    // Retire dust.
                    remaining[k] = 0.0;
                    continue;
                }
                schedule.push(Segment {
                    job: k,
                    proc: 0,
                    start: cursor,
                    end: cursor + run,
                    speed,
                });
                remaining[k] -= speed * run;
                cursor += run;
                budget_time -= run;
            }
            let _ = t_next;
        }
    }
    schedule.normalize();
    BkpOutcome {
        schedule,
        forced_speedups: forced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::energy::schedule_energy;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::validate::assert_feasible;
    use mpss_offline::optimal_schedule;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn speed_for_single_job_at_release_is_e_scaled_density_cap() {
        // One job (0, 1, 1): at t = 0 the candidates give
        // γ(0) = max_{t2 ≥ 1} 1/(e·t2) = 1/e, so s(0) = 1.
        let ins = Instance::new(1, vec![job(0.0, 1.0, 1.0)]).unwrap();
        let s0 = bkp_speed(&ins, 0.0);
        assert!((s0 - 1.0).abs() < 1e-9, "s(0) = {s0}");
        // Later, the effective window shrinks and the speed rises.
        assert!(bkp_speed(&ins, 0.5) > s0);
    }

    #[test]
    fn unreleased_jobs_are_invisible() {
        let ins = Instance::new(1, vec![job(5.0, 6.0, 1.0)]).unwrap();
        assert_eq!(bkp_speed(&ins, 0.0), 0.0);
        assert!(bkp_speed(&ins, 5.0) > 0.0);
    }

    #[test]
    fn bkp_schedules_feasibly_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..15 {
            let n = rng.gen_range(2..7);
            let jobs: Vec<_> = (0..n)
                .map(|_| {
                    let r = rng.gen_range(0..8) as f64;
                    let span = rng.gen_range(1..=4) as f64;
                    job(r, r + span, rng.gen_range(1..=5) as f64)
                })
                .collect();
            let ins = Instance::new(1, jobs).unwrap();
            let out = bkp_schedule(&ins, 64);
            assert_feasible(&ins, &out.schedule, 1e-5);
        }
    }

    #[test]
    fn bkp_energy_within_its_theoretical_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let n = rng.gen_range(2..6);
            let jobs: Vec<_> = (0..n)
                .map(|_| {
                    let r = rng.gen_range(0..6) as f64;
                    let span = rng.gen_range(1..=4) as f64;
                    job(r, r + span, rng.gen_range(1..=5) as f64)
                })
                .collect();
            let ins = Instance::new(1, jobs).unwrap();
            let alpha = 2.0;
            let p = Polynomial::new(alpha);
            let e_bkp = schedule_energy(&bkp_schedule(&ins, 64).schedule, &p);
            let e_opt = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            let bound = 2.0 * (alpha / (alpha - 1.0)).powf(alpha) * std::f64::consts::E.powf(alpha);
            assert!(
                e_bkp / e_opt <= bound,
                "ratio {} exceeds 2(α/(α−1))^α e^α = {bound}",
                e_bkp / e_opt
            );
        }
    }

    #[test]
    #[should_panic(expected = "single-processor")]
    fn rejects_multi_processor_instances() {
        let ins = Instance::new(2, vec![job(0.0, 1.0, 1.0)]).unwrap();
        bkp_schedule(&ins, 8);
    }
}
