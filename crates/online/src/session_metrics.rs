//! Live telemetry handles for online sessions.
//!
//! A [`SessionMetrics`] bundle registers one labeled series per session
//! quantity on an [`mpss_obs::MetricsHub`] — arrivals, replans, active jobs,
//! queued volume, the session clock, per-processor speeds, and a windowed
//! replan-latency histogram — all labeled `{algo="oa"|"avr"}` (speeds add
//! `proc`). Sessions run unmetered by default: a session only publishes
//! after [`OaSession::attach_metrics`](crate::OaSession::attach_metrics) /
//! [`AvrSession::attach_metrics`](crate::AvrSession::attach_metrics) hands
//! it a bundle, so the unattached paths stay exactly as cheap as before.
//!
//! The metric names live in `mpss_obs::names::METRICS`; the manifest
//! coverage test cross-checks that everything registered here is listed.

use mpss_obs::{Counter, Gauge, MetricsHub, WindowHistogram};

/// Labeled series handles for one online session. Cloning shares the
/// underlying series (handles are `Arc`s into the hub).
#[derive(Clone)]
pub struct SessionMetrics {
    arrivals: Counter,
    replans: Counter,
    active_jobs: Gauge,
    queued_volume: Gauge,
    clock: Gauge,
    /// One speed gauge per processor, labeled `proc="0"..proc="m-1"`.
    speeds: Vec<Gauge>,
    replan_seconds: WindowHistogram,
}

impl SessionMetrics {
    /// Registers (or re-attaches to) the session series for algorithm
    /// `algo` on `m` processors. Registration is idempotent: two sessions
    /// with the same `algo` label share series, which is what you want
    /// when restarting a session against a long-lived hub.
    pub fn register(hub: &MetricsHub, algo: &str, m: usize) -> SessionMetrics {
        Self::with_labels(hub, &[("algo", algo)], m)
    }

    /// [`register`](SessionMetrics::register) with an additional `tenant`
    /// label, for services multiplexing many sessions over one hub (the
    /// `mpss-serve` daemon registers one bundle per tenant). Same family
    /// names, one extra label dimension, so dashboards aggregate across
    /// tenants with a plain `sum by (algo)`.
    pub fn register_tenant(hub: &MetricsHub, algo: &str, tenant: &str, m: usize) -> SessionMetrics {
        Self::with_labels(hub, &[("algo", algo), ("tenant", tenant)], m)
    }

    fn with_labels(hub: &MetricsHub, labels: &[(&str, &str)], m: usize) -> SessionMetrics {
        let algo_labels = labels;
        SessionMetrics {
            arrivals: hub.counter(
                "mpss_session_arrivals_total",
                "jobs announced to the session",
                algo_labels,
            ),
            replans: hub.counter(
                "mpss_session_replans_total",
                "plan recomputations (OA replans on every arrival)",
                algo_labels,
            ),
            active_jobs: hub.gauge(
                "mpss_session_active_jobs",
                "jobs with remaining volume at the current clock",
                algo_labels,
            ),
            queued_volume: hub.gauge(
                "mpss_session_queued_volume",
                "total unfinished volume at the current clock",
                algo_labels,
            ),
            clock: hub.gauge(
                "mpss_session_clock",
                "the session clock (model time, not wall time)",
                algo_labels,
            ),
            speeds: (0..m)
                .map(|p| {
                    let proc = p.to_string();
                    let mut proc_labels: Vec<(&str, &str)> = labels.to_vec();
                    proc_labels.push(("proc", &proc));
                    hub.gauge(
                        "mpss_session_speed",
                        "current speed of one processor",
                        &proc_labels,
                    )
                })
                .collect(),
            replan_seconds: hub.histogram(
                "mpss_session_replan_seconds",
                "wall-clock latency of one replan",
                algo_labels,
            ),
        }
    }

    /// Counts one job announcement.
    pub fn on_arrival(&self) {
        self.arrivals.inc();
    }

    /// Counts one replan and records its wall-clock latency.
    pub fn on_replan(&self, seconds: f64) {
        self.replans.inc();
        self.replan_seconds.observe(seconds);
    }

    /// Publishes the session's current state: clock, live-job count,
    /// unfinished volume, and per-processor speeds (extra speeds beyond
    /// the registered processor count are ignored).
    pub fn publish(&self, now: f64, active_jobs: usize, queued_volume: f64, speeds: &[f64]) {
        self.clock.set(now);
        self.active_jobs.set(active_jobs as f64);
        self.queued_volume.set(queued_volume.max(0.0));
        for (gauge, &s) in self.speeds.iter().zip(speeds) {
            gauge.set(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_publish_and_render_round_trip() {
        let hub = MetricsHub::new();
        let metrics = SessionMetrics::register(&hub, "oa", 2);
        metrics.on_arrival();
        metrics.on_arrival();
        metrics.on_replan(0.002);
        metrics.publish(1.5, 1, 3.25, &[2.0, 0.5]);

        let text = hub.render();
        let expo = mpss_obs::parse_exposition(&text).expect("render must parse");
        let arrivals = expo
            .family("mpss_session_arrivals_total")
            .and_then(|f| f.sample("mpss_session_arrivals_total", &[("algo", "oa")]))
            .expect("arrivals series");
        assert_eq!(arrivals.value, 2.0);
        let speed1 = expo
            .family("mpss_session_speed")
            .and_then(|f| f.sample("mpss_session_speed", &[("algo", "oa"), ("proc", "1")]))
            .expect("per-proc speed series");
        assert_eq!(speed1.value, 0.5);
        let count = expo
            .family("mpss_session_replan_seconds")
            .and_then(|f| f.sample("mpss_session_replan_seconds_count", &[("algo", "oa")]))
            .expect("replan histogram count");
        assert_eq!(count.value, 1.0);
    }

    #[test]
    fn registration_is_shared_between_sessions_of_one_algo() {
        let hub = MetricsHub::new();
        let a = SessionMetrics::register(&hub, "avr", 1);
        let b = SessionMetrics::register(&hub, "avr", 1);
        a.on_arrival();
        b.on_arrival();
        let rows = hub.snapshot();
        let row = rows
            .iter()
            .find(|r| r.name == "mpss_session_arrivals_total")
            .unwrap();
        match &row.value {
            mpss_obs::SnapshotValue::Counter(n) => assert_eq!(*n, 2),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn every_registered_family_is_in_the_manifest() {
        let hub = MetricsHub::new();
        let metrics = SessionMetrics::register(&hub, "oa", 1);
        metrics.publish(0.0, 0, 0.0, &[0.0]);
        for row in hub.snapshot() {
            assert!(
                mpss_obs::names::known_metric(&row.name),
                "{} missing from mpss_obs::names::METRICS",
                row.name
            );
        }
    }
}
