//! Incremental online scheduling session.
//!
//! [`oa_schedule`](crate::oa_schedule) replays a complete instance; this
//! module exposes the same OA(m) logic as a *driveable* session for systems
//! that discover jobs as they arrive: push arrivals with
//! [`OaSession::arrive`], advance the clock with [`OaSession::advance_to`],
//! and query the current plan at any moment. The executed history is
//! append-only (audited by `mpss-sim`'s commit-monotonicity check in the
//! tests), and the committed schedule equals the batch `oa_schedule` run on
//! the same arrival sequence.

use crate::session_metrics::SessionMetrics;
use mpss_core::{Instance, Job, JobId, ModelError, Schedule, Segment};
use mpss_offline::optimal::{optimal_schedule, OptimalResult};

/// A live OA(m) scheduling session.
pub struct OaSession {
    m: usize,
    now: f64,
    /// All jobs seen so far, in arrival order (the session's job ids).
    jobs: Vec<Job<f64>>,
    remaining: Vec<f64>,
    /// Committed (executed) history up to `now`.
    executed: Schedule<f64>,
    /// The plan currently being followed (over session job ids).
    plan: Option<PlanView>,
    replans: usize,
    metrics: Option<SessionMetrics>,
}

struct PlanView {
    /// Maps plan-internal job indices to session job ids.
    job_map: Vec<JobId>,
    result: OptimalResult<f64>,
}

/// Errors from driving a session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Time may not move backwards.
    TimeWentBackwards { now: f64, requested: f64 },
    /// An arriving job's release time lies in the past.
    LateArrival { now: f64, release: f64 },
    /// The arriving job is malformed (empty window / non-positive volume).
    BadJob(ModelError),
    /// Internal planning failure (defensive; unreachable for valid input).
    Planning(ModelError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::TimeWentBackwards { now, requested } => {
                write!(
                    f,
                    "cannot advance to {requested}: clock is already at {now}"
                )
            }
            SessionError::LateArrival { now, release } => {
                write!(
                    f,
                    "job released at {release} arrived after the clock reached {now}"
                )
            }
            SessionError::BadJob(e) => write!(f, "bad job: {e}"),
            SessionError::Planning(e) => write!(f, "planning failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl OaSession {
    /// Opens a session on `m` processors with the clock at `start`.
    pub fn new(m: usize, start: f64) -> OaSession {
        assert!(m >= 1, "need at least one processor");
        OaSession {
            m,
            now: start,
            jobs: Vec::new(),
            remaining: Vec::new(),
            executed: Schedule::new(m),
            plan: None,
            replans: 0,
            metrics: None,
        }
    }

    /// Attaches a live metrics bundle (see [`SessionMetrics::register`]).
    /// From now on arrivals, replans (with wall-clock latency), and every
    /// clock movement publish to the bundle's gauges; an unattached session
    /// touches no metrics at all.
    pub fn attach_metrics(&mut self, metrics: SessionMetrics) {
        self.metrics = Some(metrics);
        self.publish_metrics();
    }

    fn publish_metrics(&self) {
        if let Some(metrics) = &self.metrics {
            let mut active = 0usize;
            let mut queued = 0.0;
            for (k, job) in self.jobs.iter().enumerate() {
                if self.remaining[k] > 1e-9 * job.volume.max(1.0) {
                    active += 1;
                    queued += self.remaining[k];
                }
            }
            metrics.publish(self.now, active, queued, &self.current_speeds());
        }
    }

    /// Current clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of replans so far.
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// Announces a job arriving *now* (its release must equal or precede
    /// the current clock by at most a rounding hair) and replans. Returns
    /// the session id assigned to the job.
    pub fn arrive(&mut self, deadline: f64, volume: f64) -> Result<JobId, SessionError> {
        let job = Job::new(self.now, deadline, volume);
        // Validate via a throwaway instance.
        Instance::new(self.m, vec![job]).map_err(SessionError::BadJob)?;
        self.jobs.push(job);
        self.remaining.push(volume);
        if let Some(metrics) = &self.metrics {
            metrics.on_arrival();
        }
        self.replan()?;
        Ok(self.jobs.len() - 1)
    }

    /// Advances the clock to `t`, executing the current plan over
    /// `[now, t)` and committing it to history.
    pub fn advance_to(&mut self, t: f64) -> Result<(), SessionError> {
        if t < self.now {
            return Err(SessionError::TimeWentBackwards {
                now: self.now,
                requested: t,
            });
        }
        if let Some(plan) = &self.plan {
            let window = plan.result.schedule.restrict(self.now, t);
            for seg in &window.segments {
                let orig = plan.job_map[seg.job];
                self.remaining[orig] -= seg.work();
                self.executed.push(Segment { job: orig, ..*seg });
            }
        }
        self.now = t;
        self.publish_metrics();
        Ok(())
    }

    /// The speed each processor is running at right now (0 = idle).
    pub fn current_speeds(&self) -> Vec<f64> {
        match &self.plan {
            Some(plan) => (0..self.m)
                .map(|p| plan.result.schedule.speed_at(p, self.now))
                .collect(),
            None => vec![0.0; self.m],
        }
    }

    /// The planned speed of a session job (None once finished or unknown).
    pub fn planned_speed(&self, job: JobId) -> Option<f64> {
        let plan = self.plan.as_ref()?;
        let sub = plan.job_map.iter().position(|&o| o == job)?;
        plan.result.speed_of(sub)
    }

    /// Remaining volume of a session job.
    pub fn remaining_volume(&self, job: JobId) -> Option<f64> {
        self.remaining.get(job).copied()
    }

    /// The committed (already executed) history: everything strictly before
    /// [`now`](OaSession::now). Append-only across the session's lifetime.
    pub fn executed(&self) -> &Schedule<f64> {
        &self.executed
    }

    /// Runs the session to completion (the latest deadline) and returns the
    /// full executed schedule.
    pub fn finish(mut self) -> Result<Schedule<f64>, SessionError> {
        let horizon = self
            .jobs
            .iter()
            .map(|j| j.deadline)
            .fold(self.now, f64::max);
        self.advance_to(horizon)?;
        let mut schedule = self.executed;
        schedule.normalize();
        Ok(schedule)
    }

    fn replan(&mut self) -> Result<(), SessionError> {
        let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let mut job_map = Vec::new();
        let mut sub_jobs = Vec::new();
        for (k, job) in self.jobs.iter().enumerate() {
            if self.remaining[k] > 1e-9 * job.volume.max(1.0) {
                job_map.push(k);
                sub_jobs.push(Job::new(self.now, job.deadline, self.remaining[k]));
            }
        }
        self.replans += 1;
        if sub_jobs.is_empty() {
            self.plan = None;
        } else {
            let sub = Instance::new(self.m, sub_jobs).map_err(SessionError::Planning)?;
            let result = optimal_schedule(&sub).map_err(SessionError::Planning)?;
            self.plan = Some(PlanView { job_map, result });
        }
        if let (Some(metrics), Some(started)) = (&self.metrics, started) {
            metrics.on_replan(started.elapsed().as_secs_f64());
        }
        self.publish_metrics();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oa::oa_schedule;
    use mpss_core::energy::schedule_energy;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::validate::assert_feasible;

    #[test]
    fn session_replays_batch_oa_exactly() {
        // Batch instance with two arrival times.
        let ins = Instance::new(
            2,
            vec![job(0.0, 4.0, 3.0), job(0.0, 2.0, 2.0), job(1.0, 3.0, 2.0)],
        )
        .unwrap();
        let batch = oa_schedule(&ins).unwrap();

        let mut session = OaSession::new(2, 0.0);
        session.arrive(4.0, 3.0).unwrap();
        session.arrive(2.0, 2.0).unwrap();
        session.advance_to(1.0).unwrap();
        session.arrive(3.0, 2.0).unwrap();
        let sched = session.finish().unwrap();

        assert_feasible(&ins, &sched, 1e-6);
        let p = Polynomial::new(2.0);
        let e_batch = schedule_energy(&batch.schedule, &p);
        let e_session = schedule_energy(&sched, &p);
        assert!(
            (e_batch - e_session).abs() <= 1e-9 * e_batch.max(1.0),
            "batch {e_batch} vs session {e_session}"
        );
    }

    #[test]
    fn executed_history_is_append_only() {
        let mut session = OaSession::new(1, 0.0);
        session.arrive(4.0, 2.0).unwrap();
        session.advance_to(1.0).unwrap();
        let snap1 = (1.0, session.executed().clone());
        session.arrive(2.0, 1.5).unwrap();
        session.advance_to(2.0).unwrap();
        let snap2 = (2.0, session.executed().clone());
        session.advance_to(4.0).unwrap();
        let snap3 = (4.0, session.executed().clone());
        mpss_sim::audit_commit_monotonicity(&[snap1, snap2, snap3])
            .expect("history must be append-only");
    }

    #[test]
    fn speeds_rise_on_arrivals_never_fall() {
        let mut session = OaSession::new(1, 0.0);
        let j0 = session.arrive(4.0, 2.0).unwrap();
        let s_before = session.planned_speed(j0).unwrap();
        session.advance_to(1.0).unwrap();
        session.arrive(2.0, 3.0).unwrap(); // urgent surprise
        let s_after = session.planned_speed(j0).unwrap();
        assert!(
            s_after >= s_before - 1e-9,
            "Lemma 7 in the session API: {s_before} -> {s_after}"
        );
        assert!(s_after > s_before, "the surprise should actually raise it");
    }

    #[test]
    fn clock_and_arrival_errors() {
        let mut session = OaSession::new(1, 5.0);
        assert!(matches!(
            session.advance_to(4.0),
            Err(SessionError::TimeWentBackwards { .. })
        ));
        assert!(matches!(
            session.arrive(5.0, 1.0), // deadline == now: empty window
            Err(SessionError::BadJob(_))
        ));
        assert!(matches!(
            session.arrive(6.0, -1.0),
            Err(SessionError::BadJob(_))
        ));
    }

    #[test]
    fn idle_session_reports_zero_speeds() {
        let session = OaSession::new(3, 0.0);
        assert_eq!(session.current_speeds(), vec![0.0, 0.0, 0.0]);
        assert_eq!(session.replans(), 0);
    }

    #[test]
    fn attached_metrics_track_arrivals_replans_and_the_clock() {
        use mpss_obs::{MetricsHub, SnapshotValue};
        let hub = MetricsHub::new();
        let mut session = OaSession::new(2, 0.0);
        session.attach_metrics(crate::SessionMetrics::register(&hub, "oa", 2));
        session.arrive(4.0, 3.0).unwrap();
        session.arrive(2.0, 2.0).unwrap();
        session.advance_to(1.0).unwrap();

        let value = |name: &str| {
            hub.snapshot()
                .into_iter()
                .find(|row| row.name == name)
                .unwrap_or_else(|| panic!("{name} not registered"))
                .value
        };
        match value("mpss_session_arrivals_total") {
            SnapshotValue::Counter(n) => assert_eq!(n, 2),
            other => panic!("arrivals: {other:?}"),
        }
        match value("mpss_session_replans_total") {
            SnapshotValue::Counter(n) => assert_eq!(n, session.replans() as u64),
            other => panic!("replans: {other:?}"),
        }
        match value("mpss_session_clock") {
            SnapshotValue::Gauge(t) => assert_eq!(t, 1.0),
            other => panic!("clock: {other:?}"),
        }
        match value("mpss_session_active_jobs") {
            SnapshotValue::Gauge(n) => assert_eq!(n, 2.0),
            other => panic!("active: {other:?}"),
        }
        match value("mpss_session_replan_seconds") {
            SnapshotValue::Histogram { count, .. } => {
                assert_eq!(count, session.replans() as u64)
            }
            other => panic!("latency: {other:?}"),
        }
    }

    #[test]
    fn metered_and_unmetered_sessions_schedule_identically() {
        let drive = |metered: bool| {
            let mut session = OaSession::new(2, 0.0);
            if metered {
                let hub = mpss_obs::MetricsHub::new();
                session.attach_metrics(crate::SessionMetrics::register(&hub, "oa", 2));
            }
            session.arrive(4.0, 3.0).unwrap();
            session.advance_to(1.0).unwrap();
            session.arrive(3.0, 2.0).unwrap();
            session.finish().unwrap()
        };
        assert_eq!(drive(false).segments, drive(true).segments);
    }

    #[test]
    fn current_speeds_reflect_the_plan() {
        let mut session = OaSession::new(2, 0.0);
        session.arrive(2.0, 4.0).unwrap();
        session.arrive(2.0, 4.0).unwrap();
        let speeds = session.current_speeds();
        // Two jobs, two processors: both run at density 2.
        assert_eq!(speeds.len(), 2);
        for s in speeds {
            assert!((s - 2.0).abs() < 1e-9, "speed {s}");
        }
    }
}
