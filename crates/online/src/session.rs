//! Incremental online scheduling session.
//!
//! [`oa_schedule`](crate::oa_schedule) replays a complete instance; this
//! module exposes the same OA(m) logic as a *driveable* session for systems
//! that discover jobs as they arrive: push arrivals with
//! [`OaSession::arrive`], advance the clock with [`OaSession::advance_to`],
//! and query the current plan at any moment. The executed history is
//! append-only (audited by `mpss-sim`'s commit-monotonicity check in the
//! tests), and the committed schedule equals the batch `oa_schedule` run on
//! the same arrival sequence.

use crate::checkpoint::{CheckpointError, OaCheckpoint, PlanSnapshot, CHECKPOINT_VERSION};
use crate::session_metrics::SessionMetrics;
use mpss_core::{Instance, Job, JobId, ModelError, Schedule, Segment};
use mpss_obs::{NoopCollector, TrackedCollector};
use mpss_offline::optimal::{optimal_schedule_prepared, FlowEngine, OfflineOptions, SeedPlan};
use mpss_offline::{IncrementalPlanner, IncrementalStats};

/// What one replan cost: the flight-recorder's view of a single planning
/// event, as opposed to the session-lifetime aggregates
/// ([`OaSession::replan_work`], [`OaSession::flow_computations`]). Not part
/// of checkpoints — like metrics handles, it describes the process, not the
/// schedule state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReplanSummary {
    /// Wall-clock latency of the replan, seconds.
    pub latency_s: f64,
    /// Machine-independent derivation work this replan charged
    /// ([`work_ops`](mpss_offline::OptimalResult::work_ops); for AVR, the
    /// number of profile segments peeled, the closest work analogue).
    pub work_ops: u64,
    /// Network arcs patched incrementally by this replan (0 for scratch
    /// solves and for AVR, which has no flow network).
    pub patched_arcs: u64,
    /// Max-flow computations this replan ran (0 for AVR).
    pub flow_computations: u64,
    /// Jobs with remaining work when the replan ran.
    pub live_jobs: usize,
}

/// A live OA(m) scheduling session.
///
/// ```
/// use mpss_online::OaSession;
///
/// let mut session = OaSession::new(2, 0.0);
/// session.arrive(4.0, 3.0).unwrap();   // (deadline, volume), released now
/// session.advance_to(1.0).unwrap();    // execute the plan over [0, 1)
/// session.arrive(3.0, 2.0).unwrap();   // a surprise arrival replans
/// assert_eq!(session.replans(), 2);
/// let schedule = session.finish().unwrap();
/// assert!(schedule.total_work() > 4.9);
/// ```
pub struct OaSession {
    m: usize,
    now: f64,
    /// All jobs seen so far, in arrival order (the session's job ids).
    jobs: Vec<Job<f64>>,
    remaining: Vec<f64>,
    /// Committed (executed) history up to `now` (from the compaction
    /// watermark on, once [`compact_history`](OaSession::compact_history)
    /// has run).
    executed: Schedule<f64>,
    /// The plan currently being followed (over session job ids).
    plan: Option<PlanSnapshot>,
    /// The max-flow engine replans solve with (fixed per session: a
    /// checkpointed session must resume on the same engine to stay
    /// bit-identical).
    engine: FlowEngine,
    replans: usize,
    /// Max-flow computations across all replans (the session-level view of
    /// the `offline.maxflow.invocations` / `oa.maxflow.invocations` work
    /// counters).
    flow_computations: usize,
    /// Everything executed strictly before this time was compacted away.
    compaction_watermark: Option<f64>,
    compacted_segments: usize,
    compacted_work: f64,
    metrics: Option<SessionMetrics>,
    /// Incremental derivation planner (lazily primed). Deliberately *not*
    /// checkpointed: `sync` is a pure function of the live set, so a
    /// restored session's first replan rebuilds it and every later replan
    /// is bit-identical to the uninterrupted session's.
    planner: Option<IncrementalPlanner<f64>>,
    /// Whether replans maintain the partition incrementally (default) or
    /// re-derive it from scratch (the original pipeline, kept as an oracle
    /// for the differential tests and benchmarks).
    incremental: bool,
    /// Cumulative per-sync accounting of the incremental planner.
    incremental_stats: IncrementalStats,
    /// Machine-independent derivation work across all replans
    /// ([`OptimalResult::work_ops`](mpss_offline::OptimalResult::work_ops)
    /// summed) — the currency the incremental-vs-scratch benchmarks compare.
    replan_work: u64,
    /// The most recent replan's cost summary (see [`ReplanSummary`]).
    last_replan: Option<ReplanSummary>,
}

/// Errors from driving a session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Time may not move backwards.
    TimeWentBackwards { now: f64, requested: f64 },
    /// An arriving job's release time lies in the past.
    LateArrival { now: f64, release: f64 },
    /// The arriving job is malformed (empty window / non-positive volume).
    BadJob(ModelError),
    /// Internal planning failure (defensive; unreachable for valid input).
    Planning(ModelError),
    /// A checkpoint could not be restored (wrong version, unknown engine,
    /// or structurally inconsistent state).
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::TimeWentBackwards { now, requested } => {
                write!(
                    f,
                    "cannot advance to {requested}: clock is already at {now}"
                )
            }
            SessionError::LateArrival { now, release } => {
                write!(
                    f,
                    "job released at {release} arrived after the clock reached {now}"
                )
            }
            SessionError::BadJob(e) => write!(f, "bad job: {e}"),
            SessionError::Planning(e) => write!(f, "planning failed: {e}"),
            SessionError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl OaSession {
    /// Opens a session on `m` processors with the clock at `start`,
    /// replanning on the default max-flow engine (Dinic).
    pub fn new(m: usize, start: f64) -> OaSession {
        OaSession::with_engine(m, start, FlowEngine::default())
    }

    /// Opens a session replanning on a specific max-flow engine. The engine
    /// is fixed for the session's lifetime and recorded in checkpoints:
    /// bit-identical restore requires resuming on the same engine.
    pub fn with_engine(m: usize, start: f64, engine: FlowEngine) -> OaSession {
        assert!(m >= 1, "need at least one processor");
        OaSession {
            m,
            now: start,
            jobs: Vec::new(),
            remaining: Vec::new(),
            executed: Schedule::new(m),
            plan: None,
            engine,
            replans: 0,
            flow_computations: 0,
            compaction_watermark: None,
            compacted_segments: 0,
            compacted_work: 0.0,
            metrics: None,
            planner: None,
            incremental: true,
            incremental_stats: IncrementalStats::default(),
            replan_work: 0,
            last_replan: None,
        }
    }

    /// Attaches a live metrics bundle (see [`SessionMetrics::register`]).
    /// From now on arrivals, replans (with wall-clock latency), and every
    /// clock movement publish to the bundle's gauges; an unattached session
    /// touches no metrics at all.
    pub fn attach_metrics(&mut self, metrics: SessionMetrics) {
        self.metrics = Some(metrics);
        self.publish_metrics();
    }

    fn publish_metrics(&self) {
        if let Some(metrics) = &self.metrics {
            let mut active = 0usize;
            let mut queued = 0.0;
            for (k, job) in self.jobs.iter().enumerate() {
                if crate::eps::job_is_live(self.remaining[k], job.volume) {
                    active += 1;
                    queued += self.remaining[k];
                }
            }
            metrics.publish(self.now, active, queued, &self.current_speeds());
        }
    }

    /// Current clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of processors.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of jobs announced so far (session job ids are `0..job_count()`).
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of replans so far.
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// Total max-flow computations performed by the session's replans.
    pub fn flow_computations(&self) -> usize {
        self.flow_computations
    }

    /// The max-flow engine this session replans with.
    pub fn engine(&self) -> FlowEngine {
        self.engine
    }

    /// Switches incremental partition maintenance on or off (on by
    /// default). Purely a work knob: either way the replans are
    /// bit-identical — scratch mode exists as the oracle the differential
    /// tests and the `exp_incremental_replan` benchmark compare against.
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
        if !on {
            self.planner = None;
        }
    }

    /// Whether replans maintain the partition incrementally.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Cumulative incremental-planner accounting across all replans
    /// (all-zero while [`incremental`](OaSession::incremental) is off).
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.incremental_stats
    }

    /// Machine-independent derivation work spent by all replans so far
    /// (summed [`work_ops`](mpss_offline::OptimalResult::work_ops)).
    pub fn replan_work(&self) -> u64 {
        self.replan_work
    }

    /// Announces a job arriving *now* (its release must equal or precede
    /// the current clock by at most a rounding hair) and replans. Returns
    /// the session id assigned to the job.
    ///
    /// Error paths are metrics-neutral: a rejected arrival (bad job,
    /// planning failure) leaves the session — job list, replan counter,
    /// and every attached metric — exactly as it was.
    pub fn arrive(&mut self, deadline: f64, volume: f64) -> Result<JobId, SessionError> {
        self.arrive_observed(deadline, volume, &mut NoopCollector)
    }

    /// [`arrive`](OaSession::arrive) with the replan's solver events
    /// streamed into `obs` — e.g. a
    /// [`TraceCollector`](mpss_obs::TraceCollector) armed per-replan for
    /// slow-replan exemplar capture. The whole replan runs inside an
    /// `oa.replan` span; the collector changes nothing about the schedule
    /// (observed and unobserved arrivals are bit-identical).
    pub fn arrive_observed<C: TrackedCollector>(
        &mut self,
        deadline: f64,
        volume: f64,
        obs: &mut C,
    ) -> Result<JobId, SessionError> {
        let job = Job::new(self.now, deadline, volume);
        // Validate via a throwaway instance.
        Instance::new(self.m, vec![job]).map_err(SessionError::BadJob)?;
        self.jobs.push(job);
        self.remaining.push(volume);
        obs.instant("oa.arrival");
        if let Err(e) = self.replan(obs) {
            // Unwind so the failed arrival leaves no trace (the replan
            // itself touched no state or metrics on its error path).
            self.jobs.pop();
            self.remaining.pop();
            return Err(e);
        }
        if let Some(metrics) = &self.metrics {
            metrics.on_arrival();
        }
        Ok(self.jobs.len() - 1)
    }

    /// The most recent replan's cost summary (`None` before the first
    /// replan). Like metrics, this is process-level state: checkpoints do
    /// not carry it.
    pub fn last_replan(&self) -> Option<ReplanSummary> {
        self.last_replan
    }

    /// Takes the most recent replan's summary, leaving `None` — the daemon
    /// drains this into the flight recorder exactly once per replan.
    pub fn take_last_replan(&mut self) -> Option<ReplanSummary> {
        self.last_replan.take()
    }

    /// Advances the clock to `t`, executing the current plan over
    /// `[now, t)` and committing it to history.
    pub fn advance_to(&mut self, t: f64) -> Result<(), SessionError> {
        if t < self.now {
            return Err(SessionError::TimeWentBackwards {
                now: self.now,
                requested: t,
            });
        }
        if let Some(plan) = &self.plan {
            let window = plan.schedule.restrict(self.now, t);
            for seg in &window.segments {
                let orig = plan.job_map[seg.job];
                self.remaining[orig] -= seg.work();
                self.executed.push(Segment { job: orig, ..*seg });
            }
        }
        self.now = t;
        self.publish_metrics();
        Ok(())
    }

    /// The speed each processor is running at right now (0 = idle).
    pub fn current_speeds(&self) -> Vec<f64> {
        match &self.plan {
            Some(plan) => (0..self.m)
                .map(|p| plan.schedule.speed_at(p, self.now))
                .collect(),
            None => vec![0.0; self.m],
        }
    }

    /// The planned speed of a session job (None once finished or unknown).
    pub fn planned_speed(&self, job: JobId) -> Option<f64> {
        let plan = self.plan.as_ref()?;
        let sub = plan.job_map.iter().position(|&o| o == job)?;
        plan.speeds.get(sub).copied().flatten()
    }

    /// Remaining volume of a session job.
    pub fn remaining_volume(&self, job: JobId) -> Option<f64> {
        self.remaining.get(job).copied()
    }

    /// The committed (already executed) history: everything strictly before
    /// [`now`](OaSession::now). Append-only across the session's lifetime,
    /// except that [`compact_history`](OaSession::compact_history) may drop
    /// segments from the front (before the compaction watermark).
    pub fn executed(&self) -> &Schedule<f64> {
        &self.executed
    }

    /// Runs the session to completion (the latest deadline) and returns the
    /// full executed schedule (from the compaction watermark on, if
    /// [`compact_history`](OaSession::compact_history) has run).
    pub fn finish(mut self) -> Result<Schedule<f64>, SessionError> {
        let horizon = self
            .jobs
            .iter()
            .map(|j| j.deadline)
            .fold(self.now, f64::max);
        self.advance_to(horizon)?;
        let mut schedule = self.executed;
        schedule.normalize();
        Ok(schedule)
    }

    /// Surviving jobs' future execution spans under the current plan,
    /// re-indexed to the new sub-instance's job ids. A warm-start hint
    /// only: seeded solves are bit-identical to cold ones (the seed is
    /// clipped to capacities and re-augmented to maximality).
    fn span_seed(&self, job_map: &[JobId]) -> Option<SeedPlan<f64>> {
        let plan = self.plan.as_ref()?;
        // One pass over the old plan's segments: map each segment's job back
        // to its position in the *new* sub-instance (if still live) instead
        // of rescanning the segment list per job.
        let mut new_pos = vec![usize::MAX; self.jobs.len()];
        for (i, &orig) in job_map.iter().enumerate() {
            new_pos[orig] = i;
        }
        let mut spans: Vec<Vec<(f64, f64)>> = vec![Vec::new(); job_map.len()];
        let mut any = false;
        for seg in &plan.schedule.segments {
            let i = new_pos[plan.job_map[seg.job]];
            if i != usize::MAX && seg.end > self.now {
                spans[i].push((seg.start.max(self.now), seg.end));
                any = true;
            }
        }
        any.then_some(SeedPlan { spans })
    }

    fn replan<C: TrackedCollector>(&mut self, obs: &mut C) -> Result<(), SessionError> {
        obs.span_start("oa.replan");
        let out = self.replan_body(obs);
        obs.span_end("oa.replan");
        out
    }

    fn replan_body<C: TrackedCollector>(&mut self, obs: &mut C) -> Result<(), SessionError> {
        // Always timed: the flight recorder wants every replan's latency,
        // and one monotonic-clock read is noise next to a solve.
        let started = std::time::Instant::now();
        let mut job_map = Vec::new();
        let mut sub_jobs = Vec::new();
        for (k, job) in self.jobs.iter().enumerate() {
            if crate::eps::job_is_live(self.remaining[k], job.volume) {
                job_map.push(k);
                sub_jobs.push(Job::new(self.now, job.deadline, self.remaining[k]));
            }
        }
        let live_jobs = job_map.len();
        let mut summary = ReplanSummary {
            live_jobs,
            ..ReplanSummary::default()
        };
        // Counters move only after the solve succeeds, so an error leaves
        // the session (and its metrics) untouched.
        let new_plan = if sub_jobs.is_empty() {
            None
        } else {
            // Validate before the planner sync so a rejected sub-instance
            // leaves the incremental state untouched.
            let sub = Instance::new(self.m, sub_jobs).map_err(SessionError::Planning)?;
            let options = OfflineOptions {
                engine: self.engine,
                ..OfflineOptions::default()
            };
            let seed = self.span_seed(&job_map);
            // `job_map` ascends, so (session id, deadline) is a valid
            // planner live set; sub-instance job `i` is `job_map[i]`.
            let sync = if self.incremental {
                let live: Vec<(usize, f64)> = job_map
                    .iter()
                    .map(|&k| (k, self.jobs[k].deadline))
                    .collect();
                let planner = self.planner.get_or_insert_with(IncrementalPlanner::new);
                Some(planner.sync(self.now, &live))
            } else {
                None
            };
            let result = optimal_schedule_prepared(
                &sub,
                &options,
                seed.as_ref(),
                sync.as_ref().map(|(prepared, _)| prepared),
                obs,
            )
            .map_err(SessionError::Planning)?;
            self.flow_computations += result.flow_computations;
            self.replan_work += result.work_ops as u64;
            summary.work_ops = result.work_ops as u64;
            summary.flow_computations = result.flow_computations as u64;
            if let Some((_, stats)) = sync {
                summary.patched_arcs = stats.patched_arcs;
                self.incremental_stats.absorb(stats);
            }
            let speeds = (0..job_map.len()).map(|k| result.speed_of(k)).collect();
            Some(PlanSnapshot {
                job_map,
                schedule: result.schedule,
                speeds,
            })
        };
        self.plan = new_plan;
        self.replans += 1;
        summary.latency_s = started.elapsed().as_secs_f64();
        self.last_replan = Some(summary);
        if let Some(metrics) = &self.metrics {
            metrics.on_replan(summary.latency_s);
        }
        self.publish_metrics();
        Ok(())
    }

    /// Drops executed history strictly before `watermark` (clamped to
    /// `now`), bounding session memory for long-running services. Returns
    /// the number of segments dropped; their count and total work stay
    /// available through [`compacted_segments`](OaSession::compacted_segments)
    /// / [`compacted_work`](OaSession::compacted_work), and the effective
    /// watermark through
    /// [`compaction_watermark`](OaSession::compaction_watermark) — all three
    /// are carried by checkpoints.
    ///
    /// Only segments ending at or before the watermark are dropped, so
    /// [`executed`](OaSession::executed) always holds the exact history of
    /// `[watermark, now)` plus any straddling segments in full. Compaction
    /// never changes scheduling decisions — plans read jobs and remaining
    /// volumes, never the history.
    pub fn compact_history(&mut self, watermark: f64) -> usize {
        let effective = watermark
            .min(self.now)
            .max(self.compaction_watermark.unwrap_or(f64::MIN));
        let before = self.executed.segments.len();
        let mut dropped_work = 0.0;
        self.executed.segments.retain(|seg| {
            if seg.end <= effective {
                dropped_work += seg.work();
                false
            } else {
                true
            }
        });
        let dropped = before - self.executed.segments.len();
        self.compacted_segments += dropped;
        self.compacted_work += dropped_work;
        self.compaction_watermark = Some(effective);
        dropped
    }

    /// Everything executed strictly before this time has been compacted
    /// away (`None`: never compacted, the history is complete).
    pub fn compaction_watermark(&self) -> Option<f64> {
        self.compaction_watermark
    }

    /// Segments dropped by compaction over the session's lifetime.
    pub fn compacted_segments(&self) -> usize {
        self.compacted_segments
    }

    /// Work (volume units) carried by the compacted segments.
    pub fn compacted_work(&self) -> f64 {
        self.compacted_work
    }

    /// Freezes the full session state into a serializable, versioned
    /// [`OaCheckpoint`]. See [`crate::checkpoint`] for the format rules and
    /// the bit-identity contract; metrics handles are *not* part of the
    /// state — re-attach with
    /// [`attach_metrics`](OaSession::attach_metrics) after
    /// [`restore`](OaSession::restore).
    pub fn checkpoint(&self) -> OaCheckpoint {
        OaCheckpoint {
            version: CHECKPOINT_VERSION,
            engine: OaCheckpoint::name_of(self.engine).to_string(),
            m: self.m,
            now: self.now,
            jobs: self.jobs.clone(),
            remaining: self.remaining.clone(),
            executed: self.executed.clone(),
            plan: self.plan.clone(),
            replans: self.replans,
            flow_computations: self.flow_computations,
            compaction_watermark: self.compaction_watermark,
            compacted_segments: self.compacted_segments,
            compacted_work: self.compacted_work,
        }
    }

    /// Resumes a session from a checkpoint, bit-identically: driving the
    /// restored session replays exactly what the original would have
    /// executed, and its counters ([`replans`](OaSession::replans),
    /// [`flow_computations`](OaSession::flow_computations)) continue from
    /// the checkpointed values.
    pub fn restore(checkpoint: OaCheckpoint) -> Result<OaSession, SessionError> {
        let engine = checkpoint.validate().map_err(SessionError::Checkpoint)?;
        Ok(OaSession {
            m: checkpoint.m,
            now: checkpoint.now,
            jobs: checkpoint.jobs,
            remaining: checkpoint.remaining,
            executed: checkpoint.executed,
            plan: checkpoint.plan,
            engine,
            replans: checkpoint.replans,
            flow_computations: checkpoint.flow_computations,
            compaction_watermark: checkpoint.compaction_watermark,
            compacted_segments: checkpoint.compacted_segments,
            compacted_work: checkpoint.compacted_work,
            metrics: None,
            planner: None,
            incremental: true,
            incremental_stats: IncrementalStats::default(),
            replan_work: 0,
            last_replan: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oa::oa_schedule;
    use mpss_core::energy::schedule_energy;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::validate::assert_feasible;

    #[test]
    fn session_replays_batch_oa_exactly() {
        // Batch instance with two arrival times.
        let ins = Instance::new(
            2,
            vec![job(0.0, 4.0, 3.0), job(0.0, 2.0, 2.0), job(1.0, 3.0, 2.0)],
        )
        .unwrap();
        let batch = oa_schedule(&ins).unwrap();

        let mut session = OaSession::new(2, 0.0);
        session.arrive(4.0, 3.0).unwrap();
        session.arrive(2.0, 2.0).unwrap();
        session.advance_to(1.0).unwrap();
        session.arrive(3.0, 2.0).unwrap();
        let sched = session.finish().unwrap();

        assert_feasible(&ins, &sched, 1e-6);
        let p = Polynomial::new(2.0);
        let e_batch = schedule_energy(&batch.schedule, &p);
        let e_session = schedule_energy(&sched, &p);
        assert!(
            (e_batch - e_session).abs() <= 1e-9 * e_batch.max(1.0),
            "batch {e_batch} vs session {e_session}"
        );
    }

    #[test]
    fn executed_history_is_append_only() {
        let mut session = OaSession::new(1, 0.0);
        session.arrive(4.0, 2.0).unwrap();
        session.advance_to(1.0).unwrap();
        let snap1 = (1.0, session.executed().clone());
        session.arrive(2.0, 1.5).unwrap();
        session.advance_to(2.0).unwrap();
        let snap2 = (2.0, session.executed().clone());
        session.advance_to(4.0).unwrap();
        let snap3 = (4.0, session.executed().clone());
        mpss_sim::audit_commit_monotonicity(&[snap1, snap2, snap3])
            .expect("history must be append-only");
    }

    #[test]
    fn speeds_rise_on_arrivals_never_fall() {
        let mut session = OaSession::new(1, 0.0);
        let j0 = session.arrive(4.0, 2.0).unwrap();
        let s_before = session.planned_speed(j0).unwrap();
        session.advance_to(1.0).unwrap();
        session.arrive(2.0, 3.0).unwrap(); // urgent surprise
        let s_after = session.planned_speed(j0).unwrap();
        assert!(
            s_after >= s_before - 1e-9,
            "Lemma 7 in the session API: {s_before} -> {s_after}"
        );
        assert!(s_after > s_before, "the surprise should actually raise it");
    }

    #[test]
    fn clock_and_arrival_errors() {
        let mut session = OaSession::new(1, 5.0);
        assert!(matches!(
            session.advance_to(4.0),
            Err(SessionError::TimeWentBackwards { .. })
        ));
        assert!(matches!(
            session.arrive(5.0, 1.0), // deadline == now: empty window
            Err(SessionError::BadJob(_))
        ));
        assert!(matches!(
            session.arrive(6.0, -1.0),
            Err(SessionError::BadJob(_))
        ));
    }

    #[test]
    fn idle_session_reports_zero_speeds() {
        let session = OaSession::new(3, 0.0);
        assert_eq!(session.current_speeds(), vec![0.0, 0.0, 0.0]);
        assert_eq!(session.replans(), 0);
    }

    #[test]
    fn attached_metrics_track_arrivals_replans_and_the_clock() {
        use mpss_obs::{MetricsHub, SnapshotValue};
        let hub = MetricsHub::new();
        let mut session = OaSession::new(2, 0.0);
        session.attach_metrics(crate::SessionMetrics::register(&hub, "oa", 2));
        session.arrive(4.0, 3.0).unwrap();
        session.arrive(2.0, 2.0).unwrap();
        session.advance_to(1.0).unwrap();

        let value = |name: &str| {
            hub.snapshot()
                .into_iter()
                .find(|row| row.name == name)
                .unwrap_or_else(|| panic!("{name} not registered"))
                .value
        };
        match value("mpss_session_arrivals_total") {
            SnapshotValue::Counter(n) => assert_eq!(n, 2),
            other => panic!("arrivals: {other:?}"),
        }
        match value("mpss_session_replans_total") {
            SnapshotValue::Counter(n) => assert_eq!(n, session.replans() as u64),
            other => panic!("replans: {other:?}"),
        }
        match value("mpss_session_clock") {
            SnapshotValue::Gauge(t) => assert_eq!(t, 1.0),
            other => panic!("clock: {other:?}"),
        }
        match value("mpss_session_active_jobs") {
            SnapshotValue::Gauge(n) => assert_eq!(n, 2.0),
            other => panic!("active: {other:?}"),
        }
        match value("mpss_session_replan_seconds") {
            SnapshotValue::Histogram { count, .. } => {
                assert_eq!(count, session.replans() as u64)
            }
            other => panic!("latency: {other:?}"),
        }
    }

    #[test]
    fn metered_and_unmetered_sessions_schedule_identically() {
        let drive = |metered: bool| {
            let mut session = OaSession::new(2, 0.0);
            if metered {
                let hub = mpss_obs::MetricsHub::new();
                session.attach_metrics(crate::SessionMetrics::register(&hub, "oa", 2));
            }
            session.arrive(4.0, 3.0).unwrap();
            session.advance_to(1.0).unwrap();
            session.arrive(3.0, 2.0).unwrap();
            session.finish().unwrap()
        };
        assert_eq!(drive(false).segments, drive(true).segments);
    }

    #[test]
    fn failed_arrivals_are_metrics_neutral() {
        use mpss_obs::{MetricsHub, SnapshotValue};
        let hub = MetricsHub::new();
        let mut session = OaSession::new(1, 0.0);
        session.attach_metrics(crate::SessionMetrics::register(&hub, "oa", 1));
        session.arrive(4.0, 2.0).unwrap();
        session.advance_to(1.0).unwrap();
        let replans_before = session.replans();
        let flows_before = session.flow_computations();

        // deadline == now: empty window, rejected before any state moves.
        assert!(matches!(
            session.arrive(1.0, 1.0),
            Err(SessionError::BadJob(_))
        ));
        assert!(matches!(
            session.arrive(5.0, -3.0),
            Err(SessionError::BadJob(_))
        ));

        assert_eq!(session.replans(), replans_before);
        assert_eq!(session.flow_computations(), flows_before);
        let value = |name: &str| {
            hub.snapshot()
                .into_iter()
                .find(|row| row.name == name)
                .unwrap_or_else(|| panic!("{name} not registered"))
                .value
        };
        match value("mpss_session_arrivals_total") {
            SnapshotValue::Counter(n) => assert_eq!(n, 1, "failed arrivals must not count"),
            other => panic!("arrivals: {other:?}"),
        }
        match value("mpss_session_replans_total") {
            SnapshotValue::Counter(n) => assert_eq!(n, replans_before as u64),
            other => panic!("replans: {other:?}"),
        }
        // The session still schedules correctly afterwards.
        session.arrive(3.0, 1.0).unwrap();
        assert_eq!(session.replans(), replans_before + 1);
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let drive_prefix = |session: &mut OaSession| {
            session.arrive(4.0, 3.0).unwrap();
            session.arrive(2.0, 2.0).unwrap();
            session.advance_to(1.0).unwrap();
        };
        let drive_suffix = |mut session: OaSession| {
            session.arrive(3.0, 2.0).unwrap();
            session.advance_to(2.5).unwrap();
            (
                session.replans(),
                session.flow_computations(),
                session.finish().unwrap(),
            )
        };

        let mut uninterrupted = OaSession::new(2, 0.0);
        drive_prefix(&mut uninterrupted);
        let expected = drive_suffix(uninterrupted);

        let mut killed = OaSession::new(2, 0.0);
        drive_prefix(&mut killed);
        let frozen = killed.checkpoint().to_json().render();
        drop(killed);
        let thawed =
            OaCheckpoint::from_json(&mpss_obs::json::Json::parse(&frozen).unwrap()).unwrap();
        let restored = OaSession::restore(thawed).unwrap();
        let actual = drive_suffix(restored);

        assert_eq!(expected.0, actual.0, "replan counters diverged");
        assert_eq!(expected.1, actual.1, "flow-computation counters diverged");
        assert_eq!(
            expected.2.segments, actual.2.segments,
            "executed schedules diverged"
        );
    }

    #[test]
    fn restore_rejects_corrupt_checkpoints() {
        let mut session = OaSession::new(1, 0.0);
        session.arrive(2.0, 1.0).unwrap();
        let mut cp = session.checkpoint();
        cp.version += 1;
        assert!(matches!(
            OaSession::restore(cp),
            Err(SessionError::Checkpoint(_))
        ));
        let mut cp = session.checkpoint();
        cp.engine = "abacus".into();
        assert!(OaSession::restore(cp).is_err());
    }

    #[test]
    fn compaction_drops_old_history_and_keeps_the_tally() {
        let mut session = OaSession::new(1, 0.0);
        session.arrive(2.0, 2.0).unwrap();
        session.advance_to(2.0).unwrap();
        session.arrive(4.0, 1.0).unwrap();
        session.advance_to(3.0).unwrap();
        let full_work = session.executed().total_work();
        let dropped = session.compact_history(2.0);
        assert!(dropped > 0);
        assert_eq!(session.compaction_watermark(), Some(2.0));
        assert_eq!(session.compacted_segments(), dropped);
        let kept_work = session.executed().total_work();
        assert!(
            (session.compacted_work() + kept_work - full_work).abs() < 1e-9,
            "work must be conserved across compaction"
        );
        // The suffix history is untouched and the watermark never moves back.
        assert!(session.executed().segments.iter().all(|s| s.end > 2.0));
        session.compact_history(1.0);
        assert_eq!(session.compaction_watermark(), Some(2.0));
        // Checkpoints carry the compaction bookkeeping.
        let cp = session.checkpoint();
        assert_eq!(cp.compaction_watermark, Some(2.0));
        assert_eq!(cp.compacted_segments, dropped);
    }

    #[test]
    fn engine_choice_survives_checkpoints() {
        use mpss_offline::FlowEngine;
        let mut session = OaSession::with_engine(1, 0.0, FlowEngine::PushRelabel);
        session.arrive(2.0, 1.0).unwrap();
        let restored = OaSession::restore(session.checkpoint()).unwrap();
        assert_eq!(restored.engine(), FlowEngine::PushRelabel);
    }

    #[test]
    fn incremental_replans_match_scratch_bit_for_bit() {
        // A long arrival stream with a growing live set: the incremental
        // session must execute the exact same schedule as the scratch
        // oracle, for strictly less derivation work.
        let drive = |incremental: bool| {
            let mut s = OaSession::new(2, 0.0);
            s.set_incremental(incremental);
            for k in 0..16u32 {
                s.advance_to(k as f64).unwrap();
                s.arrive(40.0 + k as f64, 2.0).unwrap();
            }
            // Drain a few completions into the mix.
            s.advance_to(30.0).unwrap();
            s.arrive(45.0, 1.0).unwrap();
            (
                s.replans(),
                s.flow_computations(),
                s.replan_work(),
                s.incremental_stats(),
                s.finish().unwrap(),
            )
        };
        let (inc_replans, inc_flows, inc_work, inc_stats, inc_sched) = drive(true);
        let (scr_replans, scr_flows, scr_work, scr_stats, scr_sched) = drive(false);
        assert_eq!(inc_sched.segments, scr_sched.segments, "plans diverged");
        assert_eq!(inc_replans, scr_replans);
        assert_eq!(inc_flows, scr_flows);
        assert_eq!(scr_stats, mpss_offline::IncrementalStats::default());
        assert_eq!(inc_stats.rebuilt, 1, "only the first sync rebuilds");
        assert!(inc_stats.patched_arcs > 0);
        assert!(inc_stats.reused_intervals > 0);
        assert!(
            inc_work < scr_work,
            "incremental derivation {inc_work} ops must undercut scratch {scr_work}"
        );
    }

    #[test]
    fn failed_arrival_leaves_the_planner_consistent() {
        // An arrival rejected by validation must not desync the planner:
        // the next good arrival still plans identically to scratch.
        let mut inc = OaSession::new(1, 0.0);
        inc.arrive(4.0, 2.0).unwrap();
        inc.advance_to(1.0).unwrap();
        assert!(inc.arrive(1.0, 1.0).is_err()); // deadline == now
        inc.arrive(3.0, 1.0).unwrap();

        let mut scratch = OaSession::new(1, 0.0);
        scratch.set_incremental(false);
        scratch.arrive(4.0, 2.0).unwrap();
        scratch.advance_to(1.0).unwrap();
        scratch.arrive(3.0, 1.0).unwrap();

        assert_eq!(
            inc.finish().unwrap().segments,
            scratch.finish().unwrap().segments
        );
    }

    #[test]
    fn current_speeds_reflect_the_plan() {
        let mut session = OaSession::new(2, 0.0);
        session.arrive(2.0, 4.0).unwrap();
        session.arrive(2.0, 4.0).unwrap();
        let speeds = session.current_speeds();
        // Two jobs, two processors: both run at density 2.
        assert_eq!(speeds.len(), 2);
        for s in speeds {
            assert!((s - 2.0).abs() < 1e-9, "speed {s}");
        }
    }
}
