//! Versioned, serializable session state for checkpoint/restore.
//!
//! A long-running service (see the `mpss-serve` daemon) must survive being
//! killed: it periodically serializes every live session to disk and, on
//! restart, resumes each one **bit-identically** — the restored session
//! produces exactly the executed schedule and work counters the
//! uninterrupted session would have produced. That property is only
//! achievable if the checkpoint captures *all* decision-relevant state, so
//! the structs here mirror the sessions field by field, including the
//! currently-followed plan (recomputing the plan on restore would be
//! mathematically equivalent but not guaranteed bit-identical in floating
//! point) and the max-flow engine the session replans with.
//!
//! The format is versioned by [`CHECKPOINT_VERSION`]. Versioning rules
//! (also documented in `PROTOCOL.md` at the repo root):
//!
//! * a reader MUST reject a checkpoint whose `version` it does not know
//!   (restoring across formats silently would break bit-identity);
//! * unknown *fields* are ignored on read, so additive extensions bump the
//!   version only when old readers would misinterpret the state;
//! * every field that influences scheduling decisions — jobs, remaining
//!   volumes, the clock, the plan, the engine — is required; counters and
//!   compaction bookkeeping default to their empty values.
//!
//! Checkpoints serialize through [`mpss_obs::json::Json`], the workspace's
//! offline JSON codec. `f64` fields render in shortest-round-trip form
//! (`{}` on `f64`), so reading the text back yields bit-identical doubles —
//! which is what makes JSON an acceptable carrier for a bit-identity
//! guarantee.
//!
//! ```
//! use mpss_obs::json::Json;
//! use mpss_online::{OaCheckpoint, OaSession};
//!
//! let mut session = OaSession::new(2, 0.0);
//! session.arrive(4.0, 3.0).unwrap();
//! session.advance_to(1.0).unwrap();
//!
//! // Kill…
//! let frozen = session.checkpoint().to_json().render();
//! drop(session);
//!
//! // …and resume, bit-identically.
//! let thawed = OaCheckpoint::from_json(&Json::parse(&frozen).unwrap()).unwrap();
//! let mut session = OaSession::restore(thawed).unwrap();
//! assert_eq!(session.now(), 1.0);
//! session.advance_to(4.0).unwrap();
//! ```

use mpss_core::schedule::Segment;
use mpss_core::{Job, JobId, Schedule};
use mpss_obs::json::Json;
use mpss_offline::FlowEngine;

/// The current checkpoint format version. Bump when a change would make an
/// old reader misinterpret the state; see the module docs for the rules.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Errors raised by [`OaSession::restore`](crate::OaSession::restore) /
/// [`AvrSession::restore`](crate::AvrSession::restore) on a checkpoint that
/// cannot be resumed, and by [`OaCheckpoint::from_json`] /
/// [`AvrCheckpoint::from_json`] on a document that is not a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError(pub String);

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad checkpoint: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

fn bad(msg: impl Into<String>) -> CheckpointError {
    CheckpointError(msg.into())
}

/// The plan an [`OaSession`](crate::OaSession) is currently following,
/// frozen in serializable form: the sub-instance schedule, the mapping from
/// plan-internal job indices back to session job ids, and each plan job's
/// assigned speed (in plan-internal index order).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanSnapshot {
    /// Maps plan-internal job indices to session job ids.
    pub job_map: Vec<JobId>,
    /// The plan schedule, over plan-internal job ids.
    pub schedule: Schedule<f64>,
    /// Per plan-internal job: the speed the plan assigned it (`None` if it
    /// landed in no phase, which validated inputs never produce).
    pub speeds: Vec<Option<f64>>,
}

/// Serializable spelling of the max-flow engine a session replans with.
/// A restored session must replan with the same engine the checkpointed
/// one used — the schedules agree in energy but not bit for bit.
fn engine_name(engine: FlowEngine) -> &'static str {
    match engine {
        FlowEngine::Dinic => "dinic",
        FlowEngine::PushRelabel => "push-relabel",
    }
}

fn engine_from_name(name: &str) -> Result<FlowEngine, CheckpointError> {
    match name {
        "dinic" => Ok(FlowEngine::Dinic),
        "push-relabel" => Ok(FlowEngine::PushRelabel),
        other => Err(bad(format!("unknown flow engine `{other}`"))),
    }
}

// ---- field-level JSON codec helpers -----------------------------------

fn num(doc: &Json, key: &str) -> Result<f64, CheckpointError> {
    match doc.get(key) {
        Some(Json::Num(x)) => Ok(*x),
        Some(Json::UInt(n)) => Ok(*n as f64),
        Some(other) => Err(bad(format!("`{key}` is not a number: {other:?}"))),
        None => Err(bad(format!("missing field `{key}`"))),
    }
}

fn uint(doc: &Json, key: &str) -> Result<u64, CheckpointError> {
    match doc.get(key) {
        Some(Json::UInt(n)) => Ok(*n),
        Some(other) => Err(bad(format!(
            "`{key}` is not an unsigned integer: {other:?}"
        ))),
        None => Err(bad(format!("missing field `{key}`"))),
    }
}

fn uint_or_zero(doc: &Json, key: &str) -> Result<u64, CheckpointError> {
    match doc.get(key) {
        None => Ok(0),
        _ => uint(doc, key),
    }
}

fn num_or_zero(doc: &Json, key: &str) -> Result<f64, CheckpointError> {
    match doc.get(key) {
        None => Ok(0.0),
        _ => num(doc, key),
    }
}

fn arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], CheckpointError> {
    match doc.get(key) {
        Some(Json::Arr(items)) => Ok(items),
        Some(other) => Err(bad(format!("`{key}` is not an array: {other:?}"))),
        None => Err(bad(format!("missing field `{key}`"))),
    }
}

fn any_num(value: &Json, what: &str) -> Result<f64, CheckpointError> {
    match value {
        Json::Num(x) => Ok(*x),
        Json::UInt(n) => Ok(*n as f64),
        other => Err(bad(format!("{what} is not a number: {other:?}"))),
    }
}

fn job_to_json(job: &Job<f64>) -> Json {
    let mut doc = Json::object();
    doc.push("release", Json::Num(job.release));
    doc.push("deadline", Json::Num(job.deadline));
    doc.push("volume", Json::Num(job.volume));
    doc
}

fn job_from_json(doc: &Json) -> Result<Job<f64>, CheckpointError> {
    Ok(Job::new(
        num(doc, "release")?,
        num(doc, "deadline")?,
        num(doc, "volume")?,
    ))
}

fn schedule_to_json(schedule: &Schedule<f64>) -> Json {
    let mut doc = Json::object();
    doc.push("m", Json::UInt(schedule.m as u64));
    doc.push(
        "segments",
        Json::Arr(
            schedule
                .segments
                .iter()
                .map(|seg| {
                    let mut s = Json::object();
                    s.push("job", Json::UInt(seg.job as u64));
                    s.push("proc", Json::UInt(seg.proc as u64));
                    s.push("start", Json::Num(seg.start));
                    s.push("end", Json::Num(seg.end));
                    s.push("speed", Json::Num(seg.speed));
                    s
                })
                .collect(),
        ),
    );
    doc
}

fn schedule_from_json(doc: &Json) -> Result<Schedule<f64>, CheckpointError> {
    let mut schedule = Schedule::new(uint(doc, "m")? as usize);
    for seg in arr(doc, "segments")? {
        schedule.push(Segment {
            job: uint(seg, "job")? as JobId,
            proc: uint(seg, "proc")? as usize,
            start: num(seg, "start")?,
            end: num(seg, "end")?,
            speed: num(seg, "speed")?,
        });
    }
    Ok(schedule)
}

fn watermark_to_json(watermark: Option<f64>) -> Json {
    match watermark {
        Some(t) => Json::Num(t),
        None => Json::Null,
    }
}

fn watermark_from_json(doc: &Json) -> Result<Option<f64>, CheckpointError> {
    match doc.get("compaction_watermark") {
        None | Some(Json::Null) => Ok(None),
        Some(value) => any_num(value, "`compaction_watermark`").map(Some),
    }
}

/// Full state of an [`OaSession`](crate::OaSession), ready to serialize.
#[derive(Clone, Debug, PartialEq)]
pub struct OaCheckpoint {
    /// Format version; restore rejects versions it does not know.
    pub version: u64,
    /// Max-flow engine the session replans with (`"dinic"` /
    /// `"push-relabel"`); bit-identity requires restoring with the same one.
    pub engine: String,
    /// Processor count.
    pub m: usize,
    /// The session clock.
    pub now: f64,
    /// Every job announced so far, in arrival order (session job ids).
    pub jobs: Vec<Job<f64>>,
    /// Remaining volume per job, parallel to `jobs`.
    pub remaining: Vec<f64>,
    /// Committed history (everything at or after the compaction watermark).
    pub executed: Schedule<f64>,
    /// The plan being followed, if any.
    pub plan: Option<PlanSnapshot>,
    /// Replans performed so far.
    pub replans: usize,
    /// Max-flow computations performed across all replans.
    pub flow_computations: usize,
    /// Everything executed up to this time has been compacted away from
    /// `executed` (see
    /// [`OaSession::compact_history`](crate::OaSession::compact_history)).
    pub compaction_watermark: Option<f64>,
    /// Segments dropped by compaction so far.
    pub compacted_segments: usize,
    /// Work (volume units) carried by the compacted segments.
    pub compacted_work: f64,
}

/// Full state of an [`AvrSession`](crate::AvrSession), ready to serialize.
/// AVR is memoryless — no plan to freeze — so the checkpoint is just jobs,
/// clock, history, and compaction bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct AvrCheckpoint {
    /// Format version; restore rejects versions it does not know.
    pub version: u64,
    /// Processor count.
    pub m: usize,
    /// The session clock.
    pub now: f64,
    /// Every job announced so far, in arrival order (session job ids).
    pub jobs: Vec<Job<f64>>,
    /// Committed history (everything at or after the compaction watermark).
    pub executed: Schedule<f64>,
    /// See [`OaCheckpoint::compaction_watermark`].
    pub compaction_watermark: Option<f64>,
    /// Segments dropped by compaction so far.
    pub compacted_segments: usize,
    /// Work carried by the compacted segments.
    pub compacted_work: f64,
}

impl OaCheckpoint {
    /// Renders the checkpoint as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.push("version", Json::UInt(self.version));
        doc.push("engine", Json::from(self.engine.as_str()));
        doc.push("m", Json::UInt(self.m as u64));
        doc.push("now", Json::Num(self.now));
        doc.push(
            "jobs",
            Json::Arr(self.jobs.iter().map(job_to_json).collect()),
        );
        doc.push(
            "remaining",
            Json::Arr(self.remaining.iter().map(|&w| Json::Num(w)).collect()),
        );
        doc.push("executed", schedule_to_json(&self.executed));
        doc.push(
            "plan",
            match &self.plan {
                None => Json::Null,
                Some(plan) => {
                    let mut p = Json::object();
                    p.push(
                        "job_map",
                        Json::Arr(
                            plan.job_map
                                .iter()
                                .map(|&id| Json::UInt(id as u64))
                                .collect(),
                        ),
                    );
                    p.push("schedule", schedule_to_json(&plan.schedule));
                    p.push(
                        "speeds",
                        Json::Arr(
                            plan.speeds
                                .iter()
                                .map(|s| match s {
                                    Some(v) => Json::Num(*v),
                                    None => Json::Null,
                                })
                                .collect(),
                        ),
                    );
                    p
                }
            },
        );
        doc.push("replans", Json::UInt(self.replans as u64));
        doc.push(
            "flow_computations",
            Json::UInt(self.flow_computations as u64),
        );
        doc.push(
            "compaction_watermark",
            watermark_to_json(self.compaction_watermark),
        );
        doc.push(
            "compacted_segments",
            Json::UInt(self.compacted_segments as u64),
        );
        doc.push("compacted_work", Json::Num(self.compacted_work));
        doc
    }

    /// Reads a checkpoint back from a JSON document. Unknown fields are
    /// ignored; missing counters default to zero; everything
    /// decision-relevant is required. Structural invariants are checked by
    /// [`validate`](OaCheckpoint::validate) (which
    /// [`OaSession::restore`](crate::OaSession::restore) calls), not here.
    pub fn from_json(doc: &Json) -> Result<OaCheckpoint, CheckpointError> {
        let engine = match doc.get("engine") {
            Some(Json::Str(s)) => s.clone(),
            Some(other) => return Err(bad(format!("`engine` is not a string: {other:?}"))),
            None => return Err(bad("missing field `engine`")),
        };
        let jobs = arr(doc, "jobs")?
            .iter()
            .map(job_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let remaining = arr(doc, "remaining")?
            .iter()
            .map(|w| any_num(w, "`remaining` entry"))
            .collect::<Result<Vec<_>, _>>()?;
        let plan = match doc.get("plan") {
            None | Some(Json::Null) => None,
            Some(plan) => {
                let job_map = arr(plan, "job_map")?
                    .iter()
                    .map(|id| match id {
                        Json::UInt(n) => Ok(*n as JobId),
                        other => Err(bad(format!("`job_map` entry is not an id: {other:?}"))),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let schedule = schedule_from_json(
                    plan.get("schedule")
                        .ok_or_else(|| bad("missing field `plan.schedule`"))?,
                )?;
                let speeds = arr(plan, "speeds")?
                    .iter()
                    .map(|s| match s {
                        Json::Null => Ok(None),
                        value => any_num(value, "`speeds` entry").map(Some),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Some(PlanSnapshot {
                    job_map,
                    schedule,
                    speeds,
                })
            }
        };
        Ok(OaCheckpoint {
            version: uint(doc, "version")?,
            engine,
            m: uint(doc, "m")? as usize,
            now: num(doc, "now")?,
            jobs,
            remaining,
            executed: schedule_from_json(
                doc.get("executed")
                    .ok_or_else(|| bad("missing field `executed`"))?,
            )?,
            plan,
            replans: uint_or_zero(doc, "replans")? as usize,
            flow_computations: uint_or_zero(doc, "flow_computations")? as usize,
            compaction_watermark: watermark_from_json(doc)?,
            compacted_segments: uint_or_zero(doc, "compacted_segments")? as usize,
            compacted_work: num_or_zero(doc, "compacted_work")?,
        })
    }

    /// Validates structural invariants and decodes the engine name.
    /// Called by [`OaSession::restore`](crate::OaSession::restore).
    pub fn validate(&self) -> Result<FlowEngine, CheckpointError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(bad(format!(
                "unsupported checkpoint version {} (this build reads {})",
                self.version, CHECKPOINT_VERSION
            )));
        }
        if self.m == 0 {
            return Err(bad("zero processors"));
        }
        if self.jobs.len() != self.remaining.len() {
            return Err(bad(format!(
                "{} jobs but {} remaining volumes",
                self.jobs.len(),
                self.remaining.len()
            )));
        }
        if !self.now.is_finite() {
            return Err(bad("non-finite clock"));
        }
        if let Some(plan) = &self.plan {
            if plan.speeds.len() != plan.job_map.len() {
                return Err(bad("plan speeds do not match its job map"));
            }
            if let Some(&bad_id) = plan.job_map.iter().find(|&&id| id >= self.jobs.len()) {
                return Err(bad(format!("plan references unknown session job {bad_id}")));
            }
        }
        engine_from_name(&self.engine)
    }

    /// The engine name [`OaSession::checkpoint`](crate::OaSession::checkpoint)
    /// writes for `engine`.
    pub fn name_of(engine: FlowEngine) -> &'static str {
        engine_name(engine)
    }
}

impl AvrCheckpoint {
    /// Renders the checkpoint as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.push("version", Json::UInt(self.version));
        doc.push("m", Json::UInt(self.m as u64));
        doc.push("now", Json::Num(self.now));
        doc.push(
            "jobs",
            Json::Arr(self.jobs.iter().map(job_to_json).collect()),
        );
        doc.push("executed", schedule_to_json(&self.executed));
        doc.push(
            "compaction_watermark",
            watermark_to_json(self.compaction_watermark),
        );
        doc.push(
            "compacted_segments",
            Json::UInt(self.compacted_segments as u64),
        );
        doc.push("compacted_work", Json::Num(self.compacted_work));
        doc
    }

    /// Reads a checkpoint back from a JSON document; same field rules as
    /// [`OaCheckpoint::from_json`].
    pub fn from_json(doc: &Json) -> Result<AvrCheckpoint, CheckpointError> {
        Ok(AvrCheckpoint {
            version: uint(doc, "version")?,
            m: uint(doc, "m")? as usize,
            now: num(doc, "now")?,
            jobs: arr(doc, "jobs")?
                .iter()
                .map(job_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            executed: schedule_from_json(
                doc.get("executed")
                    .ok_or_else(|| bad("missing field `executed`"))?,
            )?,
            compaction_watermark: watermark_from_json(doc)?,
            compacted_segments: uint_or_zero(doc, "compacted_segments")? as usize,
            compacted_work: num_or_zero(doc, "compacted_work")?,
        })
    }

    /// Validates structural invariants. Called by
    /// [`AvrSession::restore`](crate::AvrSession::restore).
    pub fn validate(&self) -> Result<(), CheckpointError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(bad(format!(
                "unsupported checkpoint version {} (this build reads {})",
                self.version, CHECKPOINT_VERSION
            )));
        }
        if self.m == 0 {
            return Err(bad("zero processors"));
        }
        if !self.now.is_finite() {
            return Err(bad("non-finite clock"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_mismatch_is_rejected() {
        let cp = AvrCheckpoint {
            version: CHECKPOINT_VERSION + 1,
            m: 1,
            now: 0.0,
            jobs: vec![],
            executed: Schedule::new(1),
            compaction_watermark: None,
            compacted_segments: 0,
            compacted_work: 0.0,
        };
        let err = cp.validate().unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn oa_validation_catches_structural_rot() {
        let mut cp = OaCheckpoint {
            version: CHECKPOINT_VERSION,
            engine: "dinic".into(),
            m: 2,
            now: 1.0,
            jobs: vec![mpss_core::job::job(0.0, 2.0, 1.0)],
            remaining: vec![1.0],
            executed: Schedule::new(2),
            plan: None,
            replans: 1,
            flow_computations: 1,
            compaction_watermark: None,
            compacted_segments: 0,
            compacted_work: 0.0,
        };
        assert_eq!(cp.validate().unwrap(), FlowEngine::Dinic);
        cp.engine = "push-relabel".into();
        assert_eq!(cp.validate().unwrap(), FlowEngine::PushRelabel);
        cp.engine = "simplex".into();
        assert!(cp.validate().is_err());
        cp.engine = "dinic".into();
        cp.remaining.clear();
        assert!(cp.validate().is_err());
        cp.remaining = vec![1.0];
        cp.plan = Some(PlanSnapshot {
            job_map: vec![7],
            schedule: Schedule::new(2),
            speeds: vec![Some(1.0)],
        });
        assert!(cp.validate().is_err(), "dangling plan job id");
    }

    #[test]
    fn oa_checkpoints_round_trip_bit_for_bit() {
        let mut executed = Schedule::new(2);
        executed.push(Segment {
            job: 0,
            proc: 1,
            start: 0.0,
            end: 0.5,
            speed: 1.0 / 3.0,
        });
        let cp = OaCheckpoint {
            version: CHECKPOINT_VERSION,
            engine: "push-relabel".into(),
            m: 2,
            now: 0.5,
            jobs: vec![mpss_core::job::job(0.0, 2.0, 0.1 + 0.2)],
            remaining: vec![0.3 - 0.5 / 3.0],
            executed,
            plan: Some(PlanSnapshot {
                job_map: vec![0],
                schedule: Schedule::new(2),
                speeds: vec![Some(1e-12), None],
            }),
            replans: 3,
            flow_computations: 7,
            compaction_watermark: Some(0.25),
            compacted_segments: 2,
            compacted_work: 1.0 / 7.0,
        };
        let text = cp.to_json().render();
        let back = OaCheckpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cp);
        // Pretty rendering carries the same document.
        let pretty = cp.to_json().render_pretty();
        assert_eq!(
            OaCheckpoint::from_json(&Json::parse(&pretty).unwrap()).unwrap(),
            cp
        );
    }

    #[test]
    fn avr_checkpoints_round_trip_bit_for_bit() {
        let cp = AvrCheckpoint {
            version: CHECKPOINT_VERSION,
            m: 3,
            now: 1.0 / 3.0,
            jobs: vec![mpss_core::job::job(0.0, 1.0, 2.0)],
            executed: Schedule::new(3),
            compaction_watermark: None,
            compacted_segments: 0,
            compacted_work: 0.0,
        };
        let text = cp.to_json().render();
        let back = AvrCheckpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn unknown_fields_are_ignored_but_missing_counters_default() {
        let text = r#"{
            "version": 1, "m": 1, "now": 0.5,
            "jobs": [], "executed": {"m": 1, "segments": []},
            "a_future_extension": true
        }"#;
        let cp = AvrCheckpoint::from_json(&Json::parse(text).unwrap()).unwrap();
        cp.validate().unwrap();
        assert_eq!(cp.compacted_segments, 0);
        assert_eq!(cp.compaction_watermark, None);
    }

    #[test]
    fn malformed_documents_are_rejected_with_field_names() {
        let missing = Json::parse(r#"{"version": 1, "m": 2}"#).unwrap();
        let err = AvrCheckpoint::from_json(&missing).unwrap_err();
        assert!(err.to_string().contains("now"), "{err}");
        let wrong_type = Json::parse(r#"{"version": "one"}"#).unwrap();
        let err = AvrCheckpoint::from_json(&wrong_type).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
