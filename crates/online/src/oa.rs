//! OA(m) — *Optimal Available* on `m` processors (paper §3.1, Theorem 2).
//!
//! Whenever a new job arrives, OA(m) computes an optimal schedule for the
//! currently available unfinished work using the offline algorithm of
//! Section 2 (release times collapse to "now", so only deadlines matter),
//! then follows that plan until the next arrival. The paper proves this is
//! `α^α`-competitive — the same ratio as on a single processor — via a
//! potential-function argument resting on three structural facts that this
//! module's test-suite checks empirically:
//!
//! * **Lemma 7:** on arrival, the planned speed of every old job can only
//!   increase;
//! * **Lemma 8:** the per-time minimum processor speed can only increase;
//! * **Lemma 10:** growing the new job's volume never decreases any speed.

use mpss_core::{Instance, Job, JobId, ModelError, Schedule};
use mpss_numeric::FlowNum;
use mpss_obs::{NoopCollector, TrackedCollector};
use mpss_offline::optimal::{optimal_schedule_seeded, OfflineOptions, OptimalResult, SeedPlan};

/// Tuning knobs for the OA(m) driver.
#[derive(Clone, Debug)]
pub struct OaOptions {
    /// Options forwarded to every nested offline solve.
    pub offline: OfflineOptions,
    /// Seed each replan's flow networks from the surviving jobs' execution
    /// spans in the previous plan (default `true`; requires
    /// `offline.warm_start`). Replans differ from the previous plan by one
    /// arrival, so most of the previous flow routes unchanged — the offline
    /// solver only performs the corrective augmentation. Purely a work
    /// optimisation: the computed plans are identical either way.
    pub reseed: bool,
}

impl Default for OaOptions {
    fn default() -> Self {
        OaOptions {
            offline: OfflineOptions::default(),
            reseed: true,
        }
    }
}

/// Outcome of an OA(m) run.
#[derive(Clone, Debug)]
pub struct OaOutcome<T: FlowNum> {
    /// The complete executed schedule, in original job ids.
    pub schedule: Schedule<T>,
    /// Number of replanning events (distinct release times).
    pub replans: usize,
    /// Total max-flow computations across all replans.
    pub flow_computations: usize,
}

/// One recorded replanning event, for lemma-level inspection.
#[derive(Clone, Debug)]
pub struct PlanRecord<T: FlowNum = f64> {
    /// Time of the replan (a release event).
    pub time: T,
    /// Original job ids of the sub-instance, aligned with the plan's jobs.
    pub job_map: Vec<JobId>,
    /// The optimal plan computed for the remaining work at `time`.
    pub plan: OptimalResult<T>,
}

/// Runs OA(m) over `instance`, revealing jobs strictly by release time.
/// Works in either numeric mode — in exact rationals the whole online run,
/// including every replanned optimal schedule, is bit-exact.
pub fn oa_schedule<T: FlowNum>(instance: &Instance<T>) -> Result<OaOutcome<T>, ModelError> {
    let (outcome, _) = oa_run(instance, &OaOptions::default(), false, &mut NoopCollector)?;
    Ok(outcome)
}

/// [`oa_schedule`] with explicit [`OaOptions`] (engine choice, warm start,
/// replan reseeding).
pub fn oa_schedule_with_options<T: FlowNum>(
    instance: &Instance<T>,
    opts: &OaOptions,
) -> Result<OaOutcome<T>, ModelError> {
    let (outcome, _) = oa_run(instance, opts, false, &mut NoopCollector)?;
    Ok(outcome)
}

/// [`oa_schedule`] with an instrumentation [`Collector`](mpss_obs::Collector).
///
/// Every arrival that triggers a recomputation is wrapped in a span
/// `oa.replan` — a recording collector therefore aggregates the per-arrival
/// replanning latency into the histogram `span.oa.replan.ms`. The nested
/// offline run reports through the same collector (its spans appear as
/// children of `oa.replan`). Counters: `oa.replans` (recomputations actually
/// performed), `oa.maxflow.invocations`, and — when reseeding is on —
/// `oa.reseed.replans` (replans that received a span seed) and
/// `oa.reseed.jobs` (surviving jobs whose previous execution spans were
/// transplanted).
pub fn oa_schedule_observed<T: FlowNum, C: TrackedCollector>(
    instance: &Instance<T>,
    obs: &mut C,
) -> Result<OaOutcome<T>, ModelError> {
    let (outcome, _) = oa_run(instance, &OaOptions::default(), false, obs)?;
    Ok(outcome)
}

/// [`oa_schedule_observed`] with explicit [`OaOptions`].
pub fn oa_schedule_observed_with<T: FlowNum, C: TrackedCollector>(
    instance: &Instance<T>,
    opts: &OaOptions,
    obs: &mut C,
) -> Result<OaOutcome<T>, ModelError> {
    let (outcome, _) = oa_run(instance, opts, false, obs)?;
    Ok(outcome)
}

/// Like [`oa_schedule`], additionally returning every intermediate plan —
/// used by the tests that verify Lemmas 7, 8 and 10, by the potential-
/// function auditor, and by the experiment harness.
pub fn oa_schedule_with_plans<T: FlowNum>(
    instance: &Instance<T>,
) -> Result<(OaOutcome<T>, Vec<PlanRecord<T>>), ModelError> {
    oa_run(instance, &OaOptions::default(), true, &mut NoopCollector)
}

fn oa_run<T: FlowNum, C: TrackedCollector>(
    instance: &Instance<T>,
    opts: &OaOptions,
    record: bool,
    obs: &mut C,
) -> Result<(OaOutcome<T>, Vec<PlanRecord<T>>), ModelError> {
    const EPS: f64 = 1e-9;
    let n = instance.n();
    let mut remaining: Vec<T> = instance.jobs.iter().map(|j| j.volume).collect();
    let mut schedule = Schedule::new(instance.m);
    let mut plans = Vec::new();
    let mut flow_computations = 0usize;

    // Release events, ascending and distinct.
    let mut events: Vec<T> = instance.jobs.iter().map(|j| j.release).collect();
    events.sort_by(|a, b| a.partial_cmp(b).expect("comparable times"));
    events.dedup_by(|a, b| a == b);
    let replans = events.len();
    let horizon = instance.max_deadline().unwrap_or_else(T::zero);
    // Previous plan (job map + schedule), kept to seed the next replan.
    let mut prev: Option<(Vec<JobId>, Schedule<T>)> = None;

    for (ei, &t) in events.iter().enumerate() {
        // Sub-instance: released, unfinished work; availability from `t`.
        let mut job_map: Vec<JobId> = Vec::new();
        let mut sub_jobs: Vec<Job<T>> = Vec::new();
        for (k, job) in instance.jobs.iter().enumerate() {
            let live = T::definitely_lt(T::zero(), remaining[k], job.volume, EPS);
            if !(t < job.release) && live {
                debug_assert!(
                    t < job.deadline,
                    "deadline passed with unfinished work (infeasible execution)"
                );
                job_map.push(k);
                sub_jobs.push(Job::new(t, job.deadline, remaining[k]));
            }
        }
        if sub_jobs.is_empty() {
            continue;
        }
        // Seed the replan from the surviving jobs' execution spans in the
        // previous plan (clipped to the future): the new instance differs
        // from the previous one by a single arrival, so most of the
        // previous flow routes unchanged through the new networks.
        let seed = if opts.reseed && opts.offline.warm_start {
            prev.as_ref().and_then(|(pmap, psched)| {
                let mut spans: Vec<Vec<(T, T)>> = vec![Vec::new(); job_map.len()];
                let mut seeded_jobs = 0u64;
                for (i, &orig) in job_map.iter().enumerate() {
                    let Some(pi) = pmap.iter().position(|&o| o == orig) else {
                        continue;
                    };
                    for seg in &psched.segments {
                        if seg.job == pi && t < seg.end {
                            spans[i].push((seg.start.max2(t), seg.end));
                        }
                    }
                    if !spans[i].is_empty() {
                        seeded_jobs += 1;
                    }
                }
                if seeded_jobs == 0 {
                    return None;
                }
                obs.count("oa.reseed.replans", 1);
                obs.count("oa.reseed.jobs", seeded_jobs);
                Some(SeedPlan { spans })
            })
        } else {
            None
        };
        obs.instant("oa.arrival");
        obs.span_start("oa.replan");
        let plan = (|| {
            let sub = Instance::new(instance.m, sub_jobs)?;
            optimal_schedule_seeded(&sub, &opts.offline, seed.as_ref(), obs)
        })();
        let plan = match plan {
            Ok(plan) => plan,
            Err(e) => {
                obs.span_end("oa.replan");
                return Err(e);
            }
        };
        flow_computations += plan.flow_computations;
        obs.count("oa.replans", 1);
        obs.count("oa.maxflow.invocations", plan.flow_computations as u64);

        // Follow the plan until the next arrival (or to completion).
        let until = events.get(ei + 1).copied().unwrap_or(horizon);
        let window = plan.schedule.restrict(t, until);
        for seg in &window.segments {
            let orig = job_map[seg.job];
            remaining[orig] -= seg.work();
            schedule.push(mpss_core::Segment { job: orig, ..*seg });
        }
        obs.span_end("oa.replan");
        prev = Some((job_map.clone(), plan.schedule.clone()));
        if record {
            plans.push(PlanRecord {
                time: t,
                job_map,
                plan,
            });
        }
    }

    debug_assert!(
        (0..n).all(|k| T::close(remaining[k], T::zero(), instance.jobs[k].volume, 1e-6)),
        "OA left unfinished work: {remaining:?}"
    );
    schedule.normalize();
    Ok((
        OaOutcome {
            schedule,
            replans,
            flow_computations,
        },
        plans,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::energy::schedule_energy;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::validate::assert_feasible;
    use mpss_offline::optimal_schedule;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, m: usize, horizon: u32, seed: u64) -> Instance<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = (0..n)
            .map(|_| {
                let r = rng.gen_range(0..horizon - 1) as f64;
                let span = rng.gen_range(1..=horizon - r as u32) as f64;
                job(r, r + span, rng.gen_range(1..=8) as f64)
            })
            .collect();
        Instance::new(m, jobs).unwrap()
    }

    #[test]
    fn oa_equals_opt_when_everything_is_released_at_once() {
        // No future information is missing ⇒ OA is exactly OPT.
        let ins = Instance::new(
            2,
            vec![job(0.0, 2.0, 3.0), job(0.0, 4.0, 2.0), job(0.0, 1.0, 1.0)],
        )
        .unwrap();
        let oa = oa_schedule(&ins).unwrap();
        assert_feasible(&ins, &oa.schedule, 1e-9);
        assert_eq!(oa.replans, 1);
        let p = Polynomial::new(2.0);
        let e_oa = schedule_energy(&oa.schedule, &p);
        let e_opt = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
        assert!((e_oa - e_opt).abs() <= 1e-9 * e_opt);
    }

    #[test]
    fn oa_is_feasible_on_random_instances() {
        for seed in 0..30u64 {
            let ins = random_instance(3 + (seed as usize % 7), 1 + (seed as usize % 3), 12, seed);
            let oa = oa_schedule(&ins).unwrap();
            assert_feasible(&ins, &oa.schedule, 1e-6);
        }
    }

    #[test]
    fn oa_respects_the_alpha_alpha_bound_empirically() {
        for seed in 50..80u64 {
            let ins = random_instance(4 + (seed as usize % 6), 1 + (seed as usize % 4), 10, seed);
            for alpha in [1.5, 2.0, 3.0] {
                let p = Polynomial::new(alpha);
                let e_oa = schedule_energy(&oa_schedule(&ins).unwrap().schedule, &p);
                let e_opt = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
                let ratio = e_oa / e_opt;
                assert!(
                    ratio <= p.oa_bound() + 1e-6,
                    "seed {seed} α {alpha}: ratio {ratio} exceeds α^α = {}",
                    p.oa_bound()
                );
                assert!(ratio >= 1.0 - 1e-6, "OA beat OPT?! ratio {ratio}");
            }
        }
    }

    #[test]
    fn lemma7_job_speeds_never_decrease_across_replans() {
        for seed in 100..120u64 {
            let ins = random_instance(6, 2, 10, seed);
            let (_, plans) = oa_schedule_with_plans(&ins).unwrap();
            for w in plans.windows(2) {
                let (old, new) = (&w[0], &w[1]);
                for (sub_id, &orig) in old.job_map.iter().enumerate() {
                    let Some(old_speed) = old.plan.speed_of(sub_id) else {
                        continue;
                    };
                    // Find the job in the new plan (it may be finished).
                    let Some(new_sub) = new.job_map.iter().position(|&o| o == orig) else {
                        continue;
                    };
                    let Some(new_speed) = new.plan.speed_of(new_sub) else {
                        continue;
                    };
                    assert!(
                        new_speed >= old_speed - 1e-6 * old_speed.max(1.0),
                        "seed {seed}: job {orig} slowed down {old_speed} -> {new_speed}"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma8_min_processor_speed_never_decreases_across_replans() {
        for seed in 150..165u64 {
            let ins = random_instance(5, 2, 10, seed);
            let (_, plans) = oa_schedule_with_plans(&ins).unwrap();
            for w in plans.windows(2) {
                let (old, new) = (&w[0], &w[1]);
                // Sample times in the overlap of both plans' horizons.
                let t0 = new.time;
                let t_end = old
                    .plan
                    .schedule
                    .segments
                    .iter()
                    .map(|s| s.end)
                    .fold(t0, f64::max);
                let steps = 16;
                for i in 0..steps {
                    let t = t0 + (t_end - t0) * (i as f64 + 0.5) / steps as f64;
                    let min_old = (0..ins.m)
                        .map(|p| old.plan.schedule.speed_at(p, t))
                        .fold(f64::INFINITY, f64::min);
                    let min_new = (0..ins.m)
                        .map(|p| new.plan.schedule.speed_at(p, t))
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        min_new >= min_old - 1e-6 * min_old.max(1.0),
                        "seed {seed} t {t}: min speed dropped {min_old} -> {min_new}"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma10_growing_a_volume_never_slows_any_job() {
        // Offline view of Lemma 10: raise one job's volume, all planned
        // speeds are monotone non-decreasing.
        for seed in 200..215u64 {
            let mut ins = random_instance(5, 2, 10, seed);
            for j in &mut ins.jobs {
                j.release = 0.0;
            }
            let base = optimal_schedule(&ins).unwrap();
            let mut grown = ins.clone();
            grown.jobs[0].volume += 1.0;
            let after = optimal_schedule(&grown).unwrap();
            for k in 0..ins.n() {
                let s0 = base.speed_of(k).unwrap();
                let s1 = after.speed_of(k).unwrap();
                assert!(
                    s1 >= s0 - 1e-6 * s0.max(1.0),
                    "seed {seed}: job {k} slowed {s0} -> {s1} after volume growth"
                );
            }
        }
    }

    #[test]
    fn late_surprise_job_forces_oa_above_opt() {
        // A classic OA-hurting pattern: a relaxed job gets planned slowly,
        // then an urgent job arrives and the leftovers must rush.
        let ins = Instance::new(1, vec![job(0.0, 2.0, 1.0), job(1.0, 2.0, 2.0)]).unwrap();
        let p = Polynomial::new(2.0);
        let e_oa = schedule_energy(&oa_schedule(&ins).unwrap().schedule, &p);
        let e_opt = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
        assert!(e_oa > e_opt + 1e-9, "OA {e_oa} should exceed OPT {e_opt}");
        assert!(e_oa / e_opt <= p.oa_bound() + 1e-9);
    }

    #[test]
    fn empty_instance() {
        let ins: Instance<f64> = Instance::new(3, vec![]).unwrap();
        let oa = oa_schedule(&ins).unwrap();
        assert!(oa.schedule.is_empty());
        assert_eq!(oa.replans, 0);
    }

    #[test]
    fn reseeded_replans_produce_identical_schedules() {
        use mpss_obs::RecordingCollector;
        // Seeding transplants the previous plan's flow, but the solved
        // problems are identical, so the phase structure (the part of the
        // optimum that is unique) and hence the energy must agree with the
        // unseeded and the fully cold drivers. Only the segment-level flow
        // split — non-unique even between the two cold engines — may
        // differ, and then only in packing positions.
        let p = Polynomial::new(2.0);
        for seed in 300..312u64 {
            let ins = random_instance(6, 2, 10, seed);
            let base = oa_schedule(&ins).unwrap();
            let e_base = schedule_energy(&base.schedule, &p);
            for (reseed, warm) in [(false, true), (false, false), (true, true)] {
                let opts = OaOptions {
                    offline: OfflineOptions {
                        warm_start: warm,
                        ..Default::default()
                    },
                    reseed,
                };
                let out = oa_schedule_with_options(&ins, &opts).unwrap();
                assert_feasible(&ins, &out.schedule, 1e-6);
                let e = schedule_energy(&out.schedule, &p);
                assert!(
                    (e - e_base).abs() <= 1e-9 * e_base.max(1.0),
                    "seed {seed} reseed {reseed} warm {warm}: energy {e} vs {e_base}"
                );
                assert_eq!(out.flow_computations, base.flow_computations);
                assert_eq!(out.replans, base.replans);
            }
        }
        // Multi-arrival instance: the second replan gets a span seed.
        let ins = Instance::new(
            1,
            vec![job(0.0, 4.0, 2.0), job(1.0, 4.0, 1.0), job(2.0, 4.0, 1.0)],
        )
        .unwrap();
        let mut rec = RecordingCollector::new();
        oa_schedule_observed_with(&ins, &OaOptions::default(), &mut rec).unwrap();
        assert!(rec.counter("oa.reseed.replans") >= 1);
        assert!(rec.counter("oa.reseed.jobs") >= 1);
    }

    #[test]
    fn observed_run_reports_replans_and_latency_histogram() {
        use mpss_obs::RecordingCollector;
        let ins = Instance::new(
            1,
            vec![job(0.0, 2.0, 1.0), job(1.0, 3.0, 2.0), job(2.5, 4.0, 1.0)],
        )
        .unwrap();
        let mut rec = RecordingCollector::new();
        let oa = oa_schedule_observed(&ins, &mut rec).unwrap();
        // Three distinct release times, all with live work ⇒ 3 recomputations.
        assert_eq!(rec.counter("oa.replans"), oa.replans as u64);
        assert_eq!(
            rec.counter("oa.maxflow.invocations"),
            oa.flow_computations as u64
        );
        // One root span per arrival, each wrapping a nested offline run.
        assert_eq!(rec.spans().len(), oa.replans);
        assert!(rec.spans().iter().all(|s| s.name == "oa.replan"
            && s.children
                .iter()
                .any(|c| c.name == "offline.optimal_schedule")));
        // The per-arrival latency histogram has one sample per replan.
        let lat = rec.histogram("span.oa.replan.ms").unwrap();
        assert_eq!(lat.count(), oa.replans as u64);
        // Observed and unobserved runs produce the same schedule.
        let plain = oa_schedule(&ins).unwrap();
        assert_eq!(plain.schedule.segments, oa.schedule.segments);
    }
}
