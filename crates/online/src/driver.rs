//! Shared online-simulation utilities and competitive-ratio reporting.

use mpss_core::energy::schedule_energy;
use mpss_core::{Instance, ModelError, PowerFunction, Schedule};
use mpss_obs::{Collector, NoopCollector, TrackedCollector};
use mpss_offline::optimal::{optimal_schedule_observed, OfflineOptions};

/// A measured competitive-ratio data point, pairing an online algorithm's
/// energy with the offline optimum and the theoretical guarantee.
#[derive(Clone, Debug)]
pub struct RatioReport {
    /// Energy of the online schedule.
    pub online_energy: f64,
    /// Energy of the offline optimum (our flow algorithm).
    pub opt_energy: f64,
    /// `online_energy / opt_energy`. `None` when the optimum needs no energy
    /// but the online algorithm spent some — the ratio is unbounded and no
    /// finite value represents it honestly. When *both* energies are zero
    /// (empty instance) the algorithms tie and the ratio is `Some(1.0)`.
    pub ratio: Option<f64>,
    /// The theorem's bound for this α (`α^α` for OA, `(2α)^α/2 + 1` for
    /// AVR), as supplied by the caller.
    pub bound: f64,
}

impl RatioReport {
    /// `true` iff the measured ratio respects the bound (with slack for
    /// float noise). An unbounded ratio (`None`) never does.
    pub fn within_bound(&self) -> bool {
        match self.ratio {
            Some(r) => r <= self.bound * (1.0 + 1e-9) + 1e-9,
            None => false,
        }
    }

    /// The ratio as a plain `f64`, mapping the unbounded case to `+∞` — for
    /// display and worst-case folds.
    pub fn ratio_or_inf(&self) -> f64 {
        self.ratio.unwrap_or(f64::INFINITY)
    }
}

/// Builds a [`RatioReport`] for an online schedule of `instance` under `p`.
///
/// Computes the offline optimum internally; failures of that computation
/// (which indicate an invalid instance) surface as the error instead of
/// panicking.
pub fn competitive_report(
    instance: &Instance<f64>,
    online: &Schedule<f64>,
    p: &impl PowerFunction,
    bound: f64,
) -> Result<RatioReport, ModelError> {
    competitive_report_observed(instance, online, p, bound, &mut NoopCollector)
}

/// [`competitive_report`] with an instrumentation [`Collector`]: the
/// internal offline-optimum run reports through `obs` (spans and counters
/// under `offline.*`), and both energies are observed into the histograms
/// `driver.online_energy` and `driver.opt_energy`.
pub fn competitive_report_observed<C: TrackedCollector>(
    instance: &Instance<f64>,
    online: &Schedule<f64>,
    p: &impl PowerFunction,
    bound: f64,
    obs: &mut C,
) -> Result<RatioReport, ModelError> {
    let opt = optimal_schedule_observed(instance, &OfflineOptions::default(), obs)?;
    let opt_energy = schedule_energy(&opt.schedule, p);
    let online_energy = schedule_energy(online, p);
    obs.observe("driver.online_energy", online_energy);
    obs.observe("driver.opt_energy", opt_energy);
    let ratio = if opt_energy > 0.0 {
        Some(online_energy / opt_energy)
    } else if online_energy > 0.0 {
        None
    } else {
        Some(1.0)
    };
    Ok(RatioReport {
        online_energy,
        opt_energy,
        ratio,
        bound,
    })
}

/// Walks `schedule` in execution order and observes the cumulative energy
/// after each segment into the histogram `driver.energy_trajectory` (so a
/// run report shows how the energy bill accrues over the run, not just its
/// total), counting segments under `driver.segments`. Returns the total.
pub fn record_energy_trajectory<C: Collector>(
    schedule: &Schedule<f64>,
    p: &impl PowerFunction,
    obs: &mut C,
) -> f64 {
    let mut order: Vec<&mpss_core::Segment<f64>> = schedule.segments.iter().collect();
    order.sort_by(|a, b| {
        a.end
            .partial_cmp(&b.end)
            .expect("comparable times")
            .then(a.start.partial_cmp(&b.start).expect("comparable times"))
    });
    let mut total = 0.0;
    for seg in order {
        total += p.power(seg.speed) * (seg.end - seg.start);
        obs.count("driver.segments", 1);
        obs.observe("driver.energy_trajectory", total);
    }
    total
}

/// Distinct release times of an instance, ascending — the replanning events
/// of any arrival-driven online algorithm.
pub fn release_events(instance: &Instance<f64>) -> Vec<f64> {
    let mut events: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
    events.sort_by(|a, b| a.partial_cmp(b).unwrap());
    events.dedup();
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avr::avr_schedule;
    use crate::oa::oa_schedule;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_obs::RecordingCollector;

    fn sample() -> Instance<f64> {
        Instance::new(
            2,
            vec![job(0.0, 2.0, 2.0), job(1.0, 3.0, 2.0), job(0.0, 4.0, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn release_events_are_sorted_distinct() {
        assert_eq!(release_events(&sample()), vec![0.0, 1.0]);
    }

    #[test]
    fn reports_for_both_online_algorithms_respect_theorems() {
        let ins = sample();
        let p = Polynomial::new(2.0);
        let oa = oa_schedule(&ins).unwrap();
        let oa_report = competitive_report(&ins, &oa.schedule, &p, p.oa_bound()).unwrap();
        assert!(oa_report.within_bound(), "{oa_report:?}");
        assert!(oa_report.ratio.unwrap() >= 1.0 - 1e-9);

        let avr = avr_schedule(&ins);
        let avr_report = competitive_report(&ins, &avr, &p, p.avr_bound()).unwrap();
        assert!(avr_report.within_bound(), "{avr_report:?}");
        assert!(avr_report.ratio.unwrap() >= 1.0 - 1e-9);
    }

    #[test]
    fn empty_instance_ties_at_ratio_one() {
        let ins: Instance<f64> = Instance::new(2, vec![]).unwrap();
        let empty = Schedule::new(2);
        let p = Polynomial::new(2.0);
        let report = competitive_report(&ins, &empty, &p, p.oa_bound()).unwrap();
        assert_eq!(report.opt_energy, 0.0);
        assert_eq!(report.ratio, Some(1.0));
        assert!(report.within_bound());
        assert_eq!(report.ratio_or_inf(), 1.0);
    }

    #[test]
    fn zero_opt_with_positive_online_energy_is_unbounded() {
        // An empty instance costs the optimum nothing; an online schedule
        // that still burns energy has no finite competitive ratio.
        let ins: Instance<f64> = Instance::new(1, vec![]).unwrap();
        let mut wasteful = Schedule::new(1);
        wasteful.push(mpss_core::Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 1.0,
            speed: 2.0,
        });
        let p = Polynomial::new(2.0);
        let report = competitive_report(&ins, &wasteful, &p, p.oa_bound()).unwrap();
        assert_eq!(report.opt_energy, 0.0);
        assert!(report.online_energy > 0.0);
        assert_eq!(report.ratio, None);
        assert!(!report.within_bound());
        assert_eq!(report.ratio_or_inf(), f64::INFINITY);
    }

    #[test]
    fn observed_report_and_trajectory_feed_the_collector() {
        let ins = sample();
        let p = Polynomial::new(2.0);
        let oa = oa_schedule(&ins).unwrap();
        let mut rec = RecordingCollector::new();
        let report =
            competitive_report_observed(&ins, &oa.schedule, &p, p.oa_bound(), &mut rec).unwrap();
        assert!(rec.counter("offline.maxflow.invocations") >= 1);
        assert_eq!(rec.histogram("driver.online_energy").unwrap().count(), 1);

        let total = record_energy_trajectory(&oa.schedule, &p, &mut rec);
        assert!((total - report.online_energy).abs() <= 1e-9 * total.max(1.0));
        let traj = rec.histogram("driver.energy_trajectory").unwrap();
        assert_eq!(traj.count(), oa.schedule.len() as u64);
        assert_eq!(rec.counter("driver.segments"), oa.schedule.len() as u64);
        // The trajectory is cumulative: its max is the total energy.
        assert!((traj.summary().max - total).abs() <= 1e-9 * total.max(1.0));
    }
}
