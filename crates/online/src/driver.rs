//! Shared online-simulation utilities and competitive-ratio reporting.

use mpss_core::energy::schedule_energy;
use mpss_core::{Instance, PowerFunction, Schedule};
use mpss_offline::optimal_schedule;

/// A measured competitive-ratio data point, pairing an online algorithm's
/// energy with the offline optimum and the theoretical guarantee.
#[derive(Clone, Debug)]
pub struct RatioReport {
    /// Energy of the online schedule.
    pub online_energy: f64,
    /// Energy of the offline optimum (our flow algorithm).
    pub opt_energy: f64,
    /// `online_energy / opt_energy`.
    pub ratio: f64,
    /// The theorem's bound for this α (`α^α` for OA, `(2α)^α/2 + 1` for
    /// AVR), as supplied by the caller.
    pub bound: f64,
}

impl RatioReport {
    /// `true` iff the measured ratio respects the bound (with slack for
    /// float noise).
    pub fn within_bound(&self) -> bool {
        self.ratio <= self.bound * (1.0 + 1e-9) + 1e-9
    }
}

/// Builds a [`RatioReport`] for an online schedule of `instance` under `p`.
pub fn competitive_report(
    instance: &Instance<f64>,
    online: &Schedule<f64>,
    p: &impl PowerFunction,
    bound: f64,
) -> RatioReport {
    let opt = optimal_schedule(instance).expect("offline optimum");
    let opt_energy = schedule_energy(&opt.schedule, p);
    let online_energy = schedule_energy(online, p);
    let ratio = if opt_energy > 0.0 {
        online_energy / opt_energy
    } else {
        1.0
    };
    RatioReport {
        online_energy,
        opt_energy,
        ratio,
        bound,
    }
}

/// Distinct release times of an instance, ascending — the replanning events
/// of any arrival-driven online algorithm.
pub fn release_events(instance: &Instance<f64>) -> Vec<f64> {
    let mut events: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
    events.sort_by(|a, b| a.partial_cmp(b).unwrap());
    events.dedup();
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avr::avr_schedule;
    use crate::oa::oa_schedule;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;

    fn sample() -> Instance<f64> {
        Instance::new(
            2,
            vec![job(0.0, 2.0, 2.0), job(1.0, 3.0, 2.0), job(0.0, 4.0, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn release_events_are_sorted_distinct() {
        assert_eq!(release_events(&sample()), vec![0.0, 1.0]);
    }

    #[test]
    fn reports_for_both_online_algorithms_respect_theorems() {
        let ins = sample();
        let p = Polynomial::new(2.0);
        let oa = oa_schedule(&ins).unwrap();
        let oa_report = competitive_report(&ins, &oa.schedule, &p, p.oa_bound());
        assert!(oa_report.within_bound(), "{oa_report:?}");
        assert!(oa_report.ratio >= 1.0 - 1e-9);

        let avr = avr_schedule(&ins);
        let avr_report = competitive_report(&ins, &avr, &p, p.avr_bound());
        assert!(avr_report.within_bound(), "{avr_report:?}");
        assert!(avr_report.ratio >= 1.0 - 1e-9);
    }
}
