//! Term-by-term decomposition of Theorem 3's proof (the chain of
//! inequalities around equation (9) of the paper).
//!
//! The proof of `E_AVR(m) ≤ (2α)^α/2 + 1` splits AVR(m)'s energy per
//! interval into processors running at or below the average load `Δ_t/m`
//! (bounded by the flattened single-processor AVR term) and dedicated
//! processors running exactly one job's density (bounded by the per-job
//! minimum energies):
//!
//! ```text
//! E_AVR(m) ≤ m^{1−α}·Σ_t Δ_t^α·|I_t|  +  Σ_i δ_i^α·(d_i − r_i)     (9)
//!          ≤ m^{1−α}·(2α)^α/2·E¹_OPT  +  E_OPT
//!          ≤ ((2α)^α/2 + 1)·E_OPT                 (using E_OPT ≥ m^{1−α}E¹_OPT)
//! ```
//!
//! [`avr_proof_terms`] computes every quantity in that chain on a concrete
//! instance so the tests (and the `thm3-avr-ratio` experiment) can check
//! each link separately — if an implementation bug ever broke one of the
//! inequalities, this pinpoints which.

use crate::avr::avr_schedule;
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_core::{Instance, Intervals};
use mpss_numeric::KahanSum;
use mpss_offline::{optimal_schedule, yds_schedule};

/// All quantities appearing in Theorem 3's proof chain.
#[derive(Clone, Debug)]
pub struct AvrProofTerms {
    /// `E_AVR(m)`: measured energy of AVR(m).
    pub e_avr: f64,
    /// `m^{1−α}·Σ_t Δ_t^α·|I_t|`: the flattened total-density term.
    pub flattened_density_term: f64,
    /// `Σ_i δ_i^α·(d_i − r_i)`: sum of per-job minimum energies.
    pub per_job_term: f64,
    /// `E¹_OPT`: optimal single-processor energy (YDS).
    pub e1_opt: f64,
    /// `E_OPT`: optimal m-processor energy (the flow algorithm).
    pub e_opt: f64,
    /// `m^{1−α}`: the flattening factor.
    pub m_factor: f64,
    /// `(2α)^α/2`: the single-processor AVR competitive constant.
    pub avr1_constant: f64,
}

impl AvrProofTerms {
    /// Inequality (9): `E_AVR ≤ flattened + per-job`.
    pub fn ineq_9(&self) -> bool {
        self.e_avr <= (self.flattened_density_term + self.per_job_term) * (1.0 + 1e-9) + 1e-9
    }
    /// `Σ_t Δ_t^α |I_t| ≤ (2α)^α/2 · E¹_OPT` (single-processor AVR bound,
    /// cited from Yao–Demers–Shenker).
    pub fn ineq_avr1(&self) -> bool {
        self.flattened_density_term
            <= self.m_factor * self.avr1_constant * self.e1_opt * (1.0 + 1e-9) + 1e-9
    }
    /// `per-job term ≤ E_OPT` (each job alone is a lower bound).
    pub fn ineq_per_job(&self) -> bool {
        self.per_job_term <= self.e_opt * (1.0 + 1e-9) + 1e-9
    }
    /// `E_OPT ≥ m^{1−α} E¹_OPT` (the flattening lower bound).
    pub fn ineq_flatten(&self) -> bool {
        self.e_opt >= self.m_factor * self.e1_opt * (1.0 - 1e-9) - 1e-9
    }
    /// The final Theorem 3 statement.
    pub fn theorem3(&self) -> bool {
        self.e_avr <= (self.avr1_constant + 1.0) * self.e_opt * (1.0 + 1e-9) + 1e-9
    }
    /// Every link in the chain at once.
    pub fn all_hold(&self) -> bool {
        self.ineq_9()
            && self.ineq_avr1()
            && self.ineq_per_job()
            && self.ineq_flatten()
            && self.theorem3()
    }
}

/// Computes the proof-chain quantities for `instance` at exponent `alpha`.
pub fn avr_proof_terms(instance: &Instance<f64>, alpha: f64) -> AvrProofTerms {
    assert!(alpha > 1.0);
    let p = Polynomial::new(alpha);
    let m = instance.m as f64;
    let intervals = Intervals::from_instance(instance);

    let e_avr = schedule_energy(&avr_schedule(instance), &p);

    // Σ_t Δ_t^α |I_t| over the event partition (densities are constant per
    // event interval, so this equals the paper's unit-interval sum on
    // integer instances and generalizes it elsewhere).
    let mut density_sum = KahanSum::new();
    for j in 0..intervals.len() {
        let (a, b) = intervals.bounds(j);
        let delta: f64 = instance
            .jobs
            .iter()
            .filter(|job| job.active_in(a, b))
            .map(|job| job.density())
            .sum();
        density_sum.add(delta.powf(alpha) * (b - a));
    }
    let m_factor = m.powf(1.0 - alpha);
    let flattened_density_term = m_factor * density_sum.value();

    let per_job_term: f64 = instance
        .jobs
        .iter()
        .map(|job| job.density().powf(alpha) * job.window())
        .sum();

    let e1_opt = schedule_energy(&yds_schedule(instance).schedule, &p);
    let e_opt = schedule_energy(&optimal_schedule(instance).expect("solvable").schedule, &p);

    AvrProofTerms {
        e_avr,
        flattened_density_term,
        per_job_term,
        e1_opt,
        e_opt,
        m_factor,
        avr1_constant: (2.0 * alpha).powf(alpha) / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::job::job;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, m: usize, seed: u64) -> Instance<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = (0..n)
            .map(|_| {
                let r = rng.gen_range(0..12) as f64;
                let span = rng.gen_range(1..=8) as f64;
                job(r, r + span, rng.gen_range(1..=8) as f64)
            })
            .collect();
        Instance::new(m, jobs).unwrap()
    }

    #[test]
    fn every_link_of_the_proof_chain_holds() {
        for seed in 0..25u64 {
            let n = 3 + (seed as usize % 7);
            let m = 1 + (seed as usize % 4);
            let ins = random_instance(n, m, seed);
            for alpha in [1.5, 2.0, 3.0] {
                let t = avr_proof_terms(&ins, alpha);
                assert!(t.ineq_9(), "seed {seed} α {alpha}: (9) broken: {t:?}");
                assert!(
                    t.ineq_avr1(),
                    "seed {seed} α {alpha}: AVR(1) bound broken: {t:?}"
                );
                assert!(
                    t.ineq_per_job(),
                    "seed {seed} α {alpha}: per-job bound broken: {t:?}"
                );
                assert!(
                    t.ineq_flatten(),
                    "seed {seed} α {alpha}: flattening broken: {t:?}"
                );
                assert!(
                    t.theorem3(),
                    "seed {seed} α {alpha}: Theorem 3 broken: {t:?}"
                );
            }
        }
    }

    #[test]
    fn single_processor_reduces_to_the_classic_decomposition() {
        // At m = 1, the flattened term IS the single-processor AVR energy
        // sum and E_OPT = E¹_OPT.
        let ins = random_instance(5, 1, 99);
        let t = avr_proof_terms(&ins, 2.0);
        assert_eq!(t.m_factor, 1.0);
        assert!((t.e_opt - t.e1_opt).abs() <= 1e-6 * t.e_opt);
        assert!(t.all_hold());
    }

    #[test]
    fn ineq_9_is_tight_when_every_job_is_peeled() {
        // One super-dense job per processor: AVR runs each alone at its
        // density, so E_AVR = per-job term exactly and the flattened term
        // is slack.
        let ins = Instance::new(2, vec![job(0.0, 1.0, 4.0), job(0.0, 1.0, 8.0)]).unwrap();
        let t = avr_proof_terms(&ins, 2.0);
        // Jobs have different densities, so AVR peels the denser one and
        // runs the other at the remaining average — which here is also its
        // own density. E_AVR = 16 + 64 = 80 = per-job term.
        assert!((t.e_avr - t.per_job_term).abs() <= 1e-9 * t.e_avr);
        assert!(t.all_hold());
    }
}
