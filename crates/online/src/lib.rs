//! Online algorithms for multi-processor speed scaling with migration
//! (Section 3 of Albers–Antoniadis–Greiner, SPAA 2011).
//!
//! * [`oa::oa_schedule`] — **OA(m)**, *Optimal Available*: on every job
//!   arrival, recompute an optimal schedule of the remaining work with the
//!   offline flow algorithm and follow it until the next arrival.
//!   Theorem 2: `α^α`-competitive for `P(s) = s^α`.
//! * [`avr::avr_schedule`] — **AVR(m)**, *Average Rate*: in each interval,
//!   peel off jobs whose density exceeds the average load onto dedicated
//!   processors, then schedule the rest at the uniform average speed with
//!   McNaughton wrap-around (the paper's Fig. 3). Theorem 3:
//!   `(2α)^α/2 + 1`-competitive.
//! * [`bkp::bkp_schedule`] — the single-processor **BKP** algorithm of
//!   Bansal–Kimbrel–Pruhs, implemented as the extension the paper's
//!   conclusion poses as an open problem for `m > 1`.
//! * [`driver`] — shared online-simulation machinery and competitive-ratio
//!   reporting.
//!
//! Online semantics are enforced by construction: every decision at time
//! `t` reads only jobs with `release ≤ t` (plus, for each released job, its
//! own deadline and volume, which the model reveals at arrival).

//!
//! ```
//! use mpss_core::job::job;
//! use mpss_core::power::Polynomial;
//! use mpss_core::Instance;
//! use mpss_online::{avr_schedule, competitive_report, oa_schedule, OaSession};
//!
//! let instance = Instance::new(1, vec![
//!     job(0.0, 2.0, 1.0),   // relaxed... until
//!     job(1.0, 2.0, 2.0),   // ...a surprise arrival forces a sprint
//! ]).unwrap();
//!
//! let p = Polynomial::new(2.0);
//! let oa = oa_schedule(&instance).unwrap();
//! let report = competitive_report(&instance, &oa.schedule, &p, p.oa_bound()).unwrap();
//! assert!(report.ratio.unwrap() > 1.0); // OA pays for not knowing the future
//! assert!(report.within_bound());       // but never more than α^α (Theorem 2)
//!
//! let avr = avr_schedule(&instance);
//! let avr_report = competitive_report(&instance, &avr, &p, p.avr_bound()).unwrap();
//! assert!(avr_report.within_bound());   // Theorem 3
//!
//! // The same algorithm as a live session:
//! let mut session = OaSession::new(1, 0.0);
//! session.arrive(2.0, 1.0).unwrap();
//! session.advance_to(1.0).unwrap();
//! session.arrive(2.0, 2.0).unwrap();
//! let schedule = session.finish().unwrap();
//! assert!(mpss_core::validate::validate_schedule(&instance, &schedule, 1e-6).is_ok());
//! ```

// `!(a < b)` on our FlowNum types deliberately reads as "b ≤ a, treating
// incomparable (impossible for validated inputs) as false"; rewriting via
// partial_cmp would obscure the tolerance-free intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod avr;
pub mod avr_analysis;
pub mod avr_session;
pub mod bkp;
pub mod checkpoint;
pub mod driver;
pub mod eps;
pub mod oa;
pub mod potential;
pub mod session;
pub mod session_metrics;

pub use avr::{
    avr_schedule, avr_schedule_observed, avr_schedule_parallel, avr_schedule_parallel_observed,
    avr_schedule_unit,
};
pub use avr_analysis::{avr_proof_terms, AvrProofTerms};
pub use avr_session::AvrSession;
pub use bkp::bkp_schedule;
pub use checkpoint::{
    AvrCheckpoint, CheckpointError, OaCheckpoint, PlanSnapshot, CHECKPOINT_VERSION,
};
pub use driver::{
    competitive_report, competitive_report_observed, record_energy_trajectory, RatioReport,
};
pub use eps::{job_is_live, live_volume_eps};
pub use oa::{
    oa_schedule, oa_schedule_observed, oa_schedule_observed_with, oa_schedule_with_options,
    oa_schedule_with_plans, OaOptions,
};
pub use potential::{audit_oa_potential, PotentialAudit};
pub use session::{OaSession, ReplanSummary, SessionError};
pub use session_metrics::SessionMetrics;
