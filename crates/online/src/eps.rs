//! The crate-wide liveness tolerance for remaining job volume.
//!
//! Online drivers track per-job remaining volume with floating-point
//! subtraction, so a job executed to completion may be left with a residual
//! on the order of the rounding error of the sums that produced it. Every
//! component that asks "is this job still live?" must therefore use the
//! *same* tolerance, or two components can disagree about the live set —
//! e.g. a session replanning for a job its metrics already report finished.
//! This module is that single definition; the former per-call-site copies
//! of the constant (`OaSession`, the potential-function audit, BKP's EDF
//! picker) all route through it.
//!
//! The tolerance is **relative** to the job's original volume — a job of
//! volume `1e6` accumulates proportionally larger float error than a job of
//! volume `1.0` — with an absolute floor of `1e-9` so that sub-unit volumes
//! (where the relative bound would underflow the achievable float noise)
//! still get a workable margin.

/// The remaining-volume tolerance for a job of the given original volume:
/// `1e-9 · max(volume, 1)`.
#[inline]
pub fn live_volume_eps(volume: f64) -> f64 {
    1e-9 * volume.max(1.0)
}

/// Whether a job with `remaining` volume left (of `volume` originally) still
/// counts as live: `remaining > live_volume_eps(volume)`. Exactly *at* the
/// tolerance counts as finished.
#[inline]
pub fn job_is_live(remaining: f64, volume: f64) -> bool {
    remaining > live_volume_eps(volume)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_is_exclusive_and_scales_with_volume() {
        // Exactly at the tolerance: finished. A hair above: live.
        assert!(!job_is_live(1e-9, 1.0));
        assert!(job_is_live(1.1e-9, 1.0));
        // Large volumes widen the band proportionally.
        assert!(!job_is_live(1e-3, 1e6));
        assert!(job_is_live(1.1e-3, 1e6));
        // Tiny volumes keep the absolute 1e-9 floor rather than shrinking
        // the band below float noise.
        assert_eq!(live_volume_eps(1e-6), 1e-9);
        assert!(!job_is_live(0.9e-9, 1e-6));
        // Fully unexecuted jobs are trivially live.
        assert!(job_is_live(1.0, 1.0));
    }
}
