//! AVR(m) — *Average Rate* on `m` processors (paper §3.2, Fig. 3,
//! Theorem 3).
//!
//! Each job contributes work at its density `δ_i = w_i/(d_i − r_i)` in every
//! instant it is active. Per interval, AVR(m) balances those densities
//! across the processors:
//!
//! 1. while the largest remaining density exceeds the average remaining
//!    load `Δ'/|M|`, the densest job is *peeled* onto a dedicated processor
//!    running at exactly its density;
//! 2. the remaining jobs share the remaining processors at the uniform
//!    speed `s_Δ = Δ'/|M|`, packed by McNaughton wrap-around (each job's
//!    share `δ_i·|I| / s_Δ ≤ |I|`, so the wrapped pieces never overlap).
//!
//! The paper presents the algorithm over unit intervals with integer
//! release times and deadlines ([`avr_schedule_unit`] reproduces that
//! faithfully). Since AVR's decisions depend only on the set of active jobs
//! — constant between consecutive release/deadline events —
//! [`avr_schedule`] computes the identical schedule directly on the event
//! partition, which also supports arbitrary real-valued times; on integer
//! instances the two produce the same speeds and the same energy.

use mpss_core::{Instance, Intervals, Schedule, Segment};
use mpss_numeric::FlowNum;
use mpss_obs::{Collector, NoopCollector, TrackedCollector};
use mpss_par::{chunk_ranges, ThreadPool};

/// Runs AVR(m) on the event-interval partition. Works for either numeric
/// mode; decisions are fully online (densities of active jobs only).
pub fn avr_schedule<T: FlowNum>(instance: &Instance<T>) -> Schedule<T> {
    avr_schedule_observed(instance, &mut NoopCollector)
}

/// [`avr_schedule`] with an instrumentation [`Collector`].
///
/// Counters: `avr.intervals` (event intervals with at least one active job)
/// and `avr.peeled` (over-dense jobs peeled onto dedicated processors across
/// all intervals — the Fig. 3 step 1 work).
pub fn avr_schedule_observed<T: FlowNum, C: Collector>(
    instance: &Instance<T>,
    obs: &mut C,
) -> Schedule<T> {
    let intervals = Intervals::from_instance(instance);
    let mut schedule = Schedule::new(instance.m);
    for j in 0..intervals.len() {
        let (start, end) = intervals.bounds(j);
        schedule_interval(instance, &mut schedule, start, end, obs);
    }
    schedule.normalize();
    schedule
}

/// [`avr_schedule`] with the per-interval work spread over `pool`.
///
/// Bit-identical to the sequential schedule: AVR's decisions in interval
/// `I_j` depend only on the jobs active in `I_j`, so the intervals are
/// embarrassingly parallel; each worker computes its contiguous chunk of
/// intervals into a private segment buffer and the buffers are spliced back
/// in interval order, reproducing the exact segment sequence the sequential
/// loop feeds into [`Schedule::normalize`] (a stable sort).
pub fn avr_schedule_parallel<T: FlowNum>(instance: &Instance<T>, pool: &ThreadPool) -> Schedule<T> {
    avr_schedule_parallel_observed(instance, pool, &mut NoopCollector)
}

/// [`avr_schedule_parallel`] with an instrumentation [`Collector`].
///
/// Emits the same `avr.intervals` / `avr.peeled` counters as the sequential
/// [`avr_schedule_observed`], plus `par.tasks` (chunks dispatched) and
/// `par.pool.threads`. Each worker records onto its own forked track
/// (`worker-0`, `worker-1`, …) wrapped in one `avr.chunk` span per chunk;
/// [`ThreadPool::scope_map_tracked`] adopts the tracks back in worker order,
/// so merged totals are deterministic and streaming traces show per-worker
/// timelines.
pub fn avr_schedule_parallel_observed<T: FlowNum, C: TrackedCollector>(
    instance: &Instance<T>,
    pool: &ThreadPool,
    obs: &mut C,
) -> Schedule<T> {
    let intervals = Intervals::from_instance(instance);
    // Below a few intervals per worker the splice bookkeeping costs more
    // than it saves; fall back to the sequential loop (same output).
    if pool.threads() <= 1 || intervals.len() < 2 * pool.threads() {
        return avr_schedule_observed(instance, obs);
    }
    let chunks = chunk_ranges(intervals.len(), pool.threads());
    obs.count("par.tasks", chunks.len() as u64);
    obs.count("par.pool.threads", pool.threads() as u64);
    let parts = pool.scope_map_tracked(chunks, obs, |_, range, track| {
        track.span_start("avr.chunk");
        let mut local = Schedule::new(instance.m);
        for j in range {
            let (start, end) = intervals.bounds(j);
            schedule_interval(instance, &mut local, start, end, track);
        }
        track.span_end("avr.chunk");
        local.segments
    });
    let mut schedule = Schedule::new(instance.m);
    for segments in parts {
        schedule.segments.extend(segments);
    }
    schedule.normalize();
    schedule
}

/// Runs AVR(m) exactly as in the paper's Fig. 3: over unit intervals
/// `[t, t+1)` for integer `t`.
///
/// # Panics
/// Panics if any release time or deadline is not an integer.
pub fn avr_schedule_unit(instance: &Instance<f64>) -> Schedule<f64> {
    for (k, job) in instance.jobs.iter().enumerate() {
        assert!(
            job.release.fract() == 0.0 && job.deadline.fract() == 0.0,
            "avr_schedule_unit requires integer times (job {k})"
        );
    }
    let mut schedule = Schedule::new(instance.m);
    let Some(t0) = instance.min_release() else {
        return schedule;
    };
    let t_max = instance.max_deadline().unwrap();
    let mut t = t0;
    while t < t_max {
        schedule_interval(instance, &mut schedule, t, t + 1.0, &mut NoopCollector);
        t += 1.0;
    }
    schedule.normalize();
    schedule
}

/// The per-interval core of Fig. 3: peel over-dense jobs, then wrap-around
/// the rest at the average speed.
fn schedule_interval<T: FlowNum, C: Collector>(
    instance: &Instance<T>,
    schedule: &mut Schedule<T>,
    start: T,
    end: T,
    obs: &mut C,
) {
    let len = end - start;
    // Active jobs with their densities, sorted densest-first.
    let mut active: Vec<(usize, T)> = instance
        .jobs
        .iter()
        .enumerate()
        .filter(|(_, job)| job.active_in(start, end))
        .map(|(k, job)| (k, job.density()))
        .collect();
    if active.is_empty() {
        return;
    }
    obs.count("avr.intervals", 1);
    active.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("comparable densities")
            .then(a.0.cmp(&b.0))
    });

    // Lane-split sum: no serial dependence chain, so wide intervals with
    // hundreds of active jobs vectorize; short slices keep the legacy order.
    let densities: Vec<T> = active.iter().map(|&(_, d)| d).collect();
    let mut total_density = mpss_numeric::sum_lanes(&densities);
    let mut m_left = instance.m;
    let mut next_proc = 0usize;
    let mut idx = 0usize;
    // Peeling loop: densest job vs average of the remainder.
    while idx < active.len() && m_left > 0 {
        let (k, d) = active[idx];
        let avg = total_density / T::from_usize(m_left);
        if !(avg < d) {
            break; // δ_max ≤ Δ'/|M|: the rest shares uniformly
        }
        obs.count("avr.peeled", 1);
        schedule.push(Segment {
            job: k,
            proc: next_proc,
            start,
            end,
            speed: d,
        });
        total_density -= d;
        m_left -= 1;
        next_proc += 1;
        idx += 1;
    }
    let rest = &active[idx..];
    if rest.is_empty() {
        return;
    }
    debug_assert!(
        m_left > 0,
        "peeling cannot exhaust processors (δ_max ≤ Δ' when |M| = 1)"
    );
    let s_avg = total_density / T::from_usize(m_left);
    if !s_avg.is_strictly_positive() {
        return;
    }
    // Wrap-around packing of the shared jobs: job share δ_i·|I| / s_avg.
    let mut cap = len;
    for &(k, d) in rest {
        let mut t_share = d * len / s_avg;
        while t_share.is_strictly_positive() {
            if next_proc >= instance.m {
                break; // float dust past the last processor
            }
            if !cap.is_strictly_positive() {
                next_proc += 1;
                cap = len;
                continue;
            }
            let chunk = t_share.min2(cap);
            let seg_start = start + (len - cap);
            schedule.push(Segment {
                job: k,
                proc: next_proc,
                start: seg_start,
                end: seg_start + chunk,
                speed: s_avg,
            });
            t_share -= chunk;
            cap -= chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::energy::{schedule_energy, schedule_energy_exact};
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::validate::assert_feasible;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_int_instance(n: usize, m: usize, horizon: u32, seed: u64) -> Instance<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = (0..n)
            .map(|_| {
                let r = rng.gen_range(0..horizon - 1) as f64;
                let span = rng.gen_range(1..=horizon - r as u32) as f64;
                job(r, r + span, rng.gen_range(1..=8) as f64)
            })
            .collect();
        Instance::new(m, jobs).unwrap()
    }

    #[test]
    fn single_job_runs_at_its_density() {
        let ins = Instance::new(2, vec![job(0.0, 4.0, 2.0)]).unwrap();
        let s = avr_schedule(&ins);
        assert_feasible(&ins, &s, 1e-9);
        assert_eq!(s.speed_levels(), vec![0.5]);
    }

    #[test]
    fn balanced_jobs_share_uniform_speed() {
        // 3 equal-density jobs on 2 processors: δ = 1 each, avg = 3/2 ≥ δ,
        // so nobody is peeled; uniform speed 1.5.
        let ins = Instance::new(2, vec![job(0.0, 2.0, 2.0); 3]).unwrap();
        let s = avr_schedule(&ins);
        assert_feasible(&ins, &s, 1e-9);
        assert_eq!(s.speed_levels(), vec![1.5]);
    }

    #[test]
    fn dense_job_is_peeled_onto_its_own_processor() {
        // Densities 4, 1, 1 on m = 2: 4 > 6/2 = 3 ⇒ peel job 0 at speed 4;
        // the rest shares speed 2.
        let ins = Instance::new(
            2,
            vec![job(0.0, 1.0, 4.0), job(0.0, 1.0, 1.0), job(0.0, 1.0, 1.0)],
        )
        .unwrap();
        let s = avr_schedule(&ins);
        assert_feasible(&ins, &s, 1e-9);
        assert_eq!(s.speed_levels(), vec![4.0, 2.0]);
        // The peeled job occupies one processor for the whole interval.
        let peeled: Vec<_> = s.segments.iter().filter(|x| x.job == 0).collect();
        assert_eq!(peeled.len(), 1);
        assert_eq!((peeled[0].start, peeled[0].end), (0.0, 1.0));
    }

    #[test]
    fn avr_is_feasible_on_random_instances() {
        for seed in 0..40u64 {
            let ins =
                random_int_instance(3 + (seed as usize % 8), 1 + (seed as usize % 4), 12, seed);
            let s = avr_schedule(&ins);
            assert_feasible(&ins, &s, 1e-9);
        }
    }

    #[test]
    fn event_and_unit_interval_versions_agree_on_energy() {
        for seed in 50..70u64 {
            let ins =
                random_int_instance(4 + (seed as usize % 5), 1 + (seed as usize % 3), 10, seed);
            let e1 = schedule_energy(&avr_schedule(&ins), &Polynomial::new(2.5));
            let e2 = schedule_energy(&avr_schedule_unit(&ins), &Polynomial::new(2.5));
            assert!(
                (e1 - e2).abs() <= 1e-9 * e1.max(1.0),
                "seed {seed}: event {e1} vs unit {e2}"
            );
            assert_feasible(&ins, &avr_schedule_unit(&ins), 1e-9);
        }
    }

    #[test]
    fn exact_rational_avr() {
        let ins: Instance<Rational> = Instance::new(
            2,
            vec![
                job(rat(0, 1), rat(1, 1), rat(4, 1)),
                job(rat(0, 1), rat(1, 1), rat(1, 1)),
                job(rat(0, 1), rat(1, 1), rat(1, 1)),
            ],
        )
        .unwrap();
        let s = avr_schedule(&ins);
        assert_feasible(&ins, &s, 0.0);
        assert_eq!(schedule_energy_exact(&s, 2), rat(20, 1)); // 16 + 4·1
    }

    #[test]
    fn avr_unit_rejects_fractional_times() {
        let ins = Instance::new(1, vec![job(0.5, 2.0, 1.0)]).unwrap();
        let r = std::panic::catch_unwind(|| avr_schedule_unit(&ins));
        assert!(r.is_err());
    }

    #[test]
    fn total_speed_equals_total_density_at_all_times() {
        // Fundamental AVR invariant: Σ_l s_{t,l} = Δ_t.
        let ins = random_int_instance(6, 3, 10, 99);
        let s = avr_schedule(&ins);
        let iv = Intervals::from_instance(&ins);
        for j in 0..iv.len() {
            let (a, b) = iv.bounds(j);
            let mid = 0.5 * (a + b);
            let total_speed: f64 = (0..ins.m).map(|p| s.speed_at(p, mid)).sum();
            let total_density: f64 = ins
                .jobs
                .iter()
                .filter(|job| job.active_in(a, b))
                .map(|job| job.density())
                .sum();
            assert!(
                (total_speed - total_density).abs() <= 1e-9 * total_density.max(1.0),
                "interval {j}: Σ speeds {total_speed} ≠ Δ_t {total_density}"
            );
        }
    }

    #[test]
    fn observed_run_counts_intervals_and_peels() {
        use mpss_obs::RecordingCollector;
        // Densities 4, 1, 1 on m = 2: exactly one peel in one interval.
        let ins = Instance::new(
            2,
            vec![job(0.0, 1.0, 4.0), job(0.0, 1.0, 1.0), job(0.0, 1.0, 1.0)],
        )
        .unwrap();
        let mut rec = RecordingCollector::new();
        let s = avr_schedule_observed(&ins, &mut rec);
        assert_eq!(rec.counter("avr.intervals"), 1);
        assert_eq!(rec.counter("avr.peeled"), 1);
        assert_eq!(s.segments, avr_schedule(&ins).segments);
    }

    #[test]
    fn parallel_avr_is_bit_identical_to_sequential() {
        for seed in 0..30u64 {
            let ins =
                random_int_instance(4 + (seed as usize % 8), 1 + (seed as usize % 4), 16, seed);
            let seq = avr_schedule(&ins);
            for threads in [1, 2, 4, 8] {
                let pool = ThreadPool::new(threads);
                let par = avr_schedule_parallel(&ins, &pool);
                assert_eq!(
                    seq.segments, par.segments,
                    "seed {seed}, {threads} threads: parallel AVR diverged"
                );
            }
        }
    }

    #[test]
    fn parallel_avr_merges_worker_tallies() {
        use mpss_obs::RecordingCollector;
        let ins = random_int_instance(10, 3, 20, 7);
        let mut seq_rec = RecordingCollector::new();
        avr_schedule_observed(&ins, &mut seq_rec);
        let mut par_rec = RecordingCollector::new();
        let pool = ThreadPool::new(4);
        avr_schedule_parallel_observed(&ins, &pool, &mut par_rec);
        assert_eq!(
            seq_rec.counter("avr.intervals"),
            par_rec.counter("avr.intervals")
        );
        assert_eq!(seq_rec.counter("avr.peeled"), par_rec.counter("avr.peeled"));
        assert_eq!(par_rec.counter("par.pool.threads"), 4);
        assert!(par_rec.counter("par.tasks") >= 1);
    }

    #[test]
    fn parallel_avr_exact_rational() {
        let ins: Instance<Rational> = {
            let jobs = (0..12i128)
                .map(|k| job(rat(k, 2), rat(k + 3, 2), rat(1 + (k % 4) * 2, 1 + (k % 3))))
                .collect();
            Instance::new(2, jobs).unwrap()
        };
        let seq = avr_schedule(&ins);
        let par = avr_schedule_parallel(&ins, &ThreadPool::new(3));
        assert_eq!(seq.segments, par.segments);
        assert_feasible(&ins, &par, 0.0);
    }

    #[test]
    fn peeled_processors_never_exceed_m() {
        // Many very dense jobs: peeling stops at m − 1 dedicated processors.
        let mut jobs = vec![job(0.0, 1.0, 100.0), job(0.0, 1.0, 50.0)];
        jobs.extend(std::iter::repeat_n(job(0.0, 1.0, 1.0), 6));
        let ins = Instance::new(3, jobs).unwrap();
        let s = avr_schedule(&ins);
        assert_feasible(&ins, &s, 1e-9);
    }
}
