//! The potential function of Theorem 2's analysis, as a numeric auditor.
//!
//! The paper proves OA(m) `α^α`-competitive with the amortization
//!
//! ```text
//! Φ(t) = α·Σ_i s_i^{α−1}·(W_OA(i) − α·W_OPT(i))  −  α²·Σ_{i'} (s'_{i'})^{α−1}·W'_OPT(i')
//! ```
//!
//! where `s_1 > s_2 > …` is OA's current speed ladder with job sets `J_i`,
//! `W_OA(i)` / `W_OPT(i)` are the remaining volumes of `J_i`'s jobs under
//! OA and OPT respectively, and the second sum ranges over jobs *finished
//! by OA but not by OPT*, grouped by the speed `s'` OA last used on them.
//! Properties (a) and (b) of the paper give, after integration,
//!
//! ```text
//! E_OA(0..t) − α^α·E_OPT(0..t) + Φ(t) ≤ 0        for all t,
//! ```
//!
//! which at the horizon (`Φ = 0`) is exactly Theorem 2. This module
//! computes `Φ(t)` along a real OA run against the offline optimum and
//! checks the inequality on a dense time grid — a numeric re-derivation of
//! the proof on every instance the test-suite throws at it.

use crate::oa::{oa_schedule_with_plans, PlanRecord};
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_core::{Instance, Schedule};
use mpss_offline::optimal_schedule;

/// Result of a potential-function audit.
#[derive(Clone, Debug)]
pub struct PotentialAudit {
    /// Sample times.
    pub times: Vec<f64>,
    /// `E_OA(0..t) − α^α·E_OPT(0..t) + Φ(t)` at each sample (must be ≤ 0).
    pub drift: Vec<f64>,
    /// Largest positive excursion of `drift` (0 when the proof inequality
    /// holds everywhere).
    pub max_violation: f64,
}

impl PotentialAudit {
    /// `true` iff the integrated proof inequality held at every sample.
    pub fn holds(&self, tol: f64) -> bool {
        self.max_violation <= tol
    }
}

/// Work completed for `job` by `schedule` during `[0, t)`.
fn work_done(schedule: &Schedule<f64>, job: usize, t: f64) -> f64 {
    schedule
        .segments
        .iter()
        .filter(|s| s.job == job && s.start < t)
        .map(|s| s.speed * (s.end.min(t) - s.start))
        .sum()
}

/// The plan in force at time `t` (the latest replan at or before `t`).
fn plan_at(plans: &[PlanRecord], t: f64) -> Option<&PlanRecord> {
    plans.iter().rev().find(|p| p.time <= t + 1e-12)
}

/// The speed OA last used on `job`: its phase speed in the most recent plan
/// containing it.
fn last_speed(plans: &[PlanRecord], t: f64, job: usize) -> Option<f64> {
    plans
        .iter()
        .rev()
        .filter(|p| p.time <= t + 1e-12)
        .find_map(|p| {
            p.job_map
                .iter()
                .position(|&o| o == job)
                .and_then(|sub| p.plan.speed_of(sub))
        })
}

/// Evaluates `Φ(t)` for the OA run described by `plans` against the
/// offline-optimal schedule `opt`.
pub fn potential_at(
    instance: &Instance<f64>,
    plans: &[PlanRecord],
    oa_executed: &Schedule<f64>,
    opt: &Schedule<f64>,
    alpha: f64,
    t: f64,
) -> f64 {
    let Some(plan) = plan_at(plans, t) else {
        return 0.0;
    };
    let n = instance.n();
    let rem_oa: Vec<f64> = (0..n)
        .map(|k| (instance.jobs[k].volume - work_done(oa_executed, k, t)).max(0.0))
        .collect();
    let rem_opt: Vec<f64> = (0..n)
        .map(|k| (instance.jobs[k].volume - work_done(opt, k, t)).max(0.0))
        .collect();
    let live = |k: usize| crate::eps::job_is_live(rem_oa[k], instance.jobs[k].volume);
    let opt_live = |k: usize| crate::eps::job_is_live(rem_opt[k], instance.jobs[k].volume);

    let mut phi = 0.0;
    // First sum: OA's current ladder.
    for phase in &plan.plan.phases {
        let s = phase.speed;
        let mut w_oa = 0.0;
        let mut w_opt = 0.0;
        for &sub in &phase.jobs {
            let orig = plan.job_map[sub];
            if live(orig) {
                w_oa += rem_oa[orig];
                w_opt += rem_opt[orig];
            }
        }
        phi += alpha * s.powf(alpha - 1.0) * (w_oa - alpha * w_opt);
    }
    // Second sum: finished-by-OA, unfinished-by-OPT jobs, by last OA speed.
    #[allow(clippy::needless_range_loop)] // k indexes jobs, rem_opt and live() together
    for k in 0..n {
        if instance.jobs[k].release <= t && !live(k) && opt_live(k) {
            if let Some(s) = last_speed(plans, t, k) {
                phi -= alpha * alpha * s.powf(alpha - 1.0) * rem_opt[k];
            }
        }
    }
    phi
}

/// Runs OA(m) and the offline optimum on `instance` and audits the
/// integrated proof inequality on a grid of `samples` points.
pub fn audit_oa_potential(instance: &Instance<f64>, alpha: f64, samples: usize) -> PotentialAudit {
    assert!(alpha > 1.0 && samples >= 2);
    let p = Polynomial::new(alpha);
    let (oa, plans) = oa_schedule_with_plans(instance).expect("OA run");
    let opt = optimal_schedule(instance)
        .expect("offline optimum")
        .schedule;

    let t0 = instance.min_release().unwrap_or(0.0);
    let t1 = instance.max_deadline().unwrap_or(1.0);
    let mut times = Vec::with_capacity(samples);
    let mut drift = Vec::with_capacity(samples);
    let mut max_violation = 0.0f64;
    for i in 0..samples {
        // Sample strictly inside the horizon, away from event boundaries.
        let t = t0 + (t1 - t0) * (i as f64 + 0.5) / samples as f64;
        let e_oa = schedule_energy(&oa.schedule.restrict(t0, t), &p);
        let e_opt = schedule_energy(&opt.restrict(t0, t), &p);
        let phi = potential_at(instance, &plans, &oa.schedule, &opt, alpha, t);
        let d = e_oa - alpha.powf(alpha) * e_opt + phi;
        max_violation = max_violation.max(d);
        times.push(t);
        drift.push(d);
    }
    PotentialAudit {
        times,
        drift,
        max_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::job::job;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, m: usize, seed: u64) -> Instance<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = (0..n)
            .map(|_| {
                let r = rng.gen_range(0..10) as f64;
                let span = rng.gen_range(1..=6) as f64;
                job(r, r + span, rng.gen_range(1..=8) as f64)
            })
            .collect();
        Instance::new(m, jobs).unwrap()
    }

    #[test]
    fn potential_vanishes_when_both_sides_are_done() {
        let ins = Instance::new(1, vec![job(0.0, 2.0, 2.0)]).unwrap();
        let (oa, plans) = oa_schedule_with_plans(&ins).unwrap();
        let opt = optimal_schedule(&ins).unwrap().schedule;
        let phi_end = potential_at(&ins, &plans, &oa.schedule, &opt, 2.0, 2.0);
        assert!(phi_end.abs() < 1e-9, "Φ(end) = {phi_end}");
    }

    #[test]
    fn proof_inequality_holds_on_random_instances() {
        for seed in 0..15u64 {
            let ins = random_instance(4 + (seed as usize % 4), 1 + (seed as usize % 3), seed);
            for alpha in [2.0, 3.0] {
                let audit = audit_oa_potential(&ins, alpha, 64);
                assert!(
                    audit.holds(1e-6),
                    "seed {seed} α {alpha}: max violation {}",
                    audit.max_violation
                );
            }
        }
    }

    #[test]
    fn proof_inequality_holds_on_the_oa_hurting_pattern() {
        // The surprise-arrival instance where OA is strictly suboptimal.
        let ins = Instance::new(1, vec![job(0.0, 2.0, 1.0), job(1.0, 2.0, 2.0)]).unwrap();
        let audit = audit_oa_potential(&ins, 2.0, 128);
        assert!(audit.holds(1e-6), "max violation {}", audit.max_violation);
        // The drift must actually dip negative (the potential banks energy
        // headroom before the arrival).
        assert!(audit.drift.iter().any(|&d| d < -1e-9));
    }

    #[test]
    fn drift_is_zero_when_oa_equals_opt() {
        // Single job: OA = OPT and Φ(t) = α·s^{α−1}(W − αW) = negative — the
        // inequality is strict except at the endpoints.
        let ins = Instance::new(1, vec![job(0.0, 4.0, 4.0)]).unwrap();
        let audit = audit_oa_potential(&ins, 2.0, 32);
        assert!(audit.holds(1e-9));
    }
}
