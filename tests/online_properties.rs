//! Cross-crate online-semantics properties: causality, commit
//! monotonicity, and the offline symmetries from `core::transform`.

use mpss::model::transform::{dilate_time, reverse_time, scale_volumes, shift_time};
use mpss::online::oa::oa_schedule_with_plans;
use mpss::prelude::*;
use mpss::sim::{audit_commit_monotonicity, audit_online_causality};

fn sweep() -> Vec<Instance<f64>> {
    [
        Family::Uniform,
        Family::Bursty,
        Family::Poisson,
        Family::Periodic,
    ]
    .iter()
    .flat_map(|&family| {
        (0..3u64).map(move |seed| {
            WorkloadSpec {
                family,
                n: 8,
                m: 2,
                horizon: 20,
                seed,
            }
            .generate()
        })
    })
    .collect()
}

#[test]
fn all_online_schedules_are_causal() {
    for instance in sweep() {
        let oa = oa_schedule(&instance).unwrap();
        audit_online_causality(&instance, &oa.schedule).expect("OA causal");
        let avr = avr_schedule(&instance);
        audit_online_causality(&instance, &avr).expect("AVR causal");
    }
    // BKP (m = 1).
    let single = WorkloadSpec {
        family: Family::Bursty,
        n: 6,
        m: 1,
        horizon: 16,
        seed: 2,
    }
    .generate();
    let bkp = bkp_schedule(&single, 64);
    audit_online_causality(&single, &bkp.schedule).expect("BKP causal");
}

#[test]
fn oa_commitments_are_append_only() {
    for instance in sweep() {
        let (outcome, plans) = oa_schedule_with_plans(&instance).unwrap();
        // Reconstruct the committed history at each replan time: the final
        // executed schedule cut at that time (OA executes its plan between
        // events, so the cut *is* what was committed by then).
        let snapshots: Vec<(f64, Schedule<f64>)> = plans
            .iter()
            .map(|p| (p.time, outcome.schedule.restrict(f64::NEG_INFINITY, p.time)))
            .chain(std::iter::once((f64::INFINITY, outcome.schedule.clone())))
            .collect();
        audit_commit_monotonicity(&snapshots).expect("OA history append-only");
    }
}

#[test]
fn offline_energy_is_invariant_under_shift_and_reversal() {
    let p = Polynomial::new(2.5);
    for instance in sweep() {
        let base = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
        let shifted = shift_time(&instance, 13.0);
        let e_shift = schedule_energy(&optimal_schedule(&shifted).unwrap().schedule, &p);
        assert!(
            (base - e_shift).abs() <= 1e-6 * base.max(1.0),
            "shift changed OPT: {base} vs {e_shift}"
        );
        let reversed = reverse_time(&instance);
        let e_rev = schedule_energy(&optimal_schedule(&reversed).unwrap().schedule, &p);
        assert!(
            (base - e_rev).abs() <= 1e-6 * base.max(1.0),
            "reversal changed OPT: {base} vs {e_rev}"
        );
    }
}

#[test]
fn offline_energy_scales_by_the_homogeneity_laws() {
    let alpha = 3.0;
    let p = Polynomial::new(alpha);
    let instance = WorkloadSpec::new(Family::Uniform, 8, 2, 77).generate();
    let base = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
    // Volume scaling: E → c^α E.
    let scaled = scale_volumes(&instance, 2.0);
    let e_scaled = schedule_energy(&optimal_schedule(&scaled).unwrap().schedule, &p);
    assert!((e_scaled - 8.0 * base).abs() <= 1e-6 * e_scaled);
    // Time dilation: E → c^{1−α} E.
    let dilated = dilate_time(&instance, 2.0);
    let e_dilated = schedule_energy(&optimal_schedule(&dilated).unwrap().schedule, &p);
    assert!((e_dilated - 0.25 * base).abs() <= 1e-6 * base);
}

#[test]
fn online_is_not_reversal_invariant_but_offline_is() {
    // A deliberately asymmetric arrival pattern: OA's energy differs
    // between a trace and its time reversal (the future is unknown in one
    // direction only), while OPT's does not. This distinguishes genuinely
    // online behavior from offline peeking.
    let instance = Instance::new(
        1,
        vec![job(0.0, 2.0, 1.0), job(1.0, 2.0, 2.0), job(0.0, 8.0, 1.0)],
    )
    .unwrap();
    let reversed = reverse_time(&instance);
    let p = Polynomial::new(2.0);
    let opt_a = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
    let opt_b = schedule_energy(&optimal_schedule(&reversed).unwrap().schedule, &p);
    assert!((opt_a - opt_b).abs() <= 1e-9 * opt_a);
    let oa_a = schedule_energy(&oa_schedule(&instance).unwrap().schedule, &p);
    let oa_b = schedule_energy(&oa_schedule(&reversed).unwrap().schedule, &p);
    assert!(
        (oa_a - oa_b).abs() > 1e-6,
        "OA should notice the arrow of time here: {oa_a} vs {oa_b}"
    );
}
