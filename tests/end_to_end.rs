//! End-to-end pipeline tests across all workspace crates: workload
//! generation → offline optimum → online algorithms → validation → energy
//! accounting, on every workload family.

use mpss::prelude::*;

fn families_sweep() -> Vec<(Family, Instance<f64>)> {
    Family::ALL
        .iter()
        .flat_map(|&family| {
            (0..3u64).map(move |seed| {
                let spec = WorkloadSpec {
                    family,
                    n: 10,
                    m: 3,
                    horizon: 32,
                    seed,
                };
                (family, spec.generate())
            })
        })
        .collect()
}

#[test]
fn optimal_schedules_are_feasible_on_every_family() {
    for (family, instance) in families_sweep() {
        let res = optimal_schedule(&instance).unwrap_or_else(|e| panic!("{family:?}: {e}"));
        assert_feasible(&instance, &res.schedule, 1e-9);
        // Phase speeds strictly decrease.
        for w in res.phases.windows(2) {
            assert!(
                w[0].speed > w[1].speed - 1e-12,
                "{family:?}: speeds not ordered"
            );
        }
    }
}

#[test]
fn online_algorithms_are_feasible_and_bounded_on_every_family() {
    for (family, instance) in families_sweep() {
        let p = Polynomial::new(2.5);
        let opt = optimal_schedule(&instance).unwrap();
        let e_opt = schedule_energy(&opt.schedule, &p);

        let oa = oa_schedule(&instance).unwrap();
        assert_feasible(&instance, &oa.schedule, 1e-6);
        let e_oa = schedule_energy(&oa.schedule, &p);
        assert!(
            e_oa >= e_opt - 1e-6 * e_opt && e_oa <= p.oa_bound() * e_opt * (1.0 + 1e-9),
            "{family:?}: OA energy {e_oa} vs OPT {e_opt}"
        );

        let avr = avr_schedule(&instance);
        assert_feasible(&instance, &avr, 1e-9);
        let e_avr = schedule_energy(&avr, &p);
        assert!(
            e_avr >= e_opt - 1e-6 * e_opt && e_avr <= p.avr_bound() * e_opt * (1.0 + 1e-9),
            "{family:?}: AVR energy {e_avr} vs OPT {e_opt}"
        );
    }
}

#[test]
fn optimality_sandwich_on_every_family() {
    for (family, instance) in families_sweep() {
        let alpha = 3.0;
        let p = Polynomial::new(alpha);
        let e_opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
        let lb = best_lower_bound(&instance, alpha);
        let nm = non_migratory_schedule(&instance, alpha, AssignPolicy::GreedyEnergy);
        assert_feasible(&instance, &nm.schedule, 1e-9);
        let ub = schedule_energy(&nm.schedule, &p);
        assert!(
            lb <= e_opt * (1.0 + 1e-6) && e_opt <= ub * (1.0 + 1e-6),
            "{family:?}: sandwich broken LB {lb} OPT {e_opt} UB {ub}"
        );
    }
}

#[test]
fn lp_baseline_brackets_opt_on_small_instances() {
    for &family in &[Family::Uniform, Family::Laminar, Family::Agreeable] {
        let spec = WorkloadSpec {
            family,
            n: 5,
            m: 2,
            horizon: 12,
            seed: 11,
        };
        let instance = spec.generate();
        let p = Polynomial::new(2.0);
        let e_opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
        let lp = lp_baseline(&instance, &p, 20).unwrap();
        assert_feasible(&instance, &lp.schedule, 1e-6);
        assert!(
            lp.energy >= e_opt * (1.0 - 1e-6) && lp.energy <= e_opt * 1.10,
            "{family:?}: LP {} vs OPT {e_opt}",
            lp.energy
        );
    }
}

#[test]
fn exact_pipeline_agrees_with_float_on_every_family() {
    use mpss::model::energy::{schedule_energy_exact, schedule_energy_poly};
    for &family in &[Family::Uniform, Family::Bursty, Family::Laminar] {
        let spec = WorkloadSpec {
            family,
            n: 8,
            m: 2,
            horizon: 16,
            seed: 5,
        };
        let instance = spec.generate();
        let exact = optimal_schedule(&instance.to_rational()).unwrap();
        assert_feasible(&instance.to_rational(), &exact.schedule, 0.0);
        let float = optimal_schedule(&instance).unwrap();
        let ef = schedule_energy_poly(&float.schedule, 3);
        let er = schedule_energy_exact(&exact.schedule, 3).to_f64();
        assert!(
            (ef - er).abs() <= 1e-6 * ef.max(1.0),
            "{family:?}: float {ef} vs exact {er}"
        );
    }
}

#[test]
fn migration_strictly_helps_on_a_crafted_instance() {
    // Three identical tight jobs on two processors: with migration all run
    // at 3/2; without, one processor must run two jobs back-to-back at
    // higher speed (or one at double speed).
    let instance = Instance::new(2, vec![job(0.0, 3.0, 3.0); 3]).unwrap();
    let p = Polynomial::new(2.0);
    let e_opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
    let e_nm = schedule_energy(
        &non_migratory_schedule(&instance, 2.0, AssignPolicy::GreedyEnergy).schedule,
        &p,
    );
    assert!((e_opt - 13.5).abs() < 1e-9, "OPT = {e_opt}"); // (3/2)²·6
    assert!(
        e_nm > e_opt * 1.1,
        "migration should save >10% here: OPT {e_opt} vs NM {e_nm}"
    );
}

#[test]
fn single_processor_everything_collapses_to_yds() {
    let spec = WorkloadSpec {
        family: Family::Uniform,
        n: 9,
        m: 1,
        horizon: 24,
        seed: 3,
    };
    let instance = spec.generate();
    let p = Polynomial::cube();
    let e_flow = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
    let e_yds = schedule_energy(&yds_schedule(&instance).schedule, &p);
    assert!((e_flow - e_yds).abs() <= 1e-6 * e_flow);
}
