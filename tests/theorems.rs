//! The paper's three theorems as executable checks.
//!
//! * Theorem 1: the combinatorial algorithm produces *optimal* schedules in
//!   polynomial time (checked against independent oracles and bounds).
//! * Theorem 2: OA(m) is `α^α`-competitive.
//! * Theorem 3: AVR(m) is `(2α)^α/2 + 1`-competitive, and the scaffolding
//!   inequalities of its proof hold.

use mpss::prelude::*;

const ALPHAS: [f64; 3] = [1.5, 2.0, 3.0];

fn sweep(n: usize, m: usize) -> Vec<Instance<f64>> {
    Family::ALL
        .iter()
        .flat_map(|&family| {
            (0..2u64).map(move |seed| {
                WorkloadSpec {
                    family,
                    n,
                    m,
                    horizon: 24,
                    seed,
                }
                .generate()
            })
        })
        .collect()
}

// ---------------------------------------------------------------- Theorem 1

#[test]
fn theorem1_flow_count_is_polynomially_bounded() {
    // The algorithm performs at most n rounds per phase and at most n
    // phases ⇒ ≤ n(n+1)/2 + n flow computations.
    for instance in sweep(12, 3) {
        let res = optimal_schedule(&instance).unwrap();
        let n = instance.n();
        assert!(
            res.flow_computations <= n * (n + 1) / 2 + n,
            "flow count {} exceeds the O(n²) budget for n = {n}",
            res.flow_computations
        );
    }
}

#[test]
fn theorem1_energy_is_minimal_against_all_oracles() {
    for instance in sweep(6, 2) {
        for alpha in ALPHAS {
            let p = Polynomial::new(alpha);
            let e = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
            // Lower bounds.
            assert!(best_lower_bound(&instance, alpha) <= e * (1.0 + 1e-6));
            // LP upper bound converges onto it.
            let lp = lp_baseline(&instance, &p, 24).unwrap().energy;
            assert!(e <= lp * (1.0 + 1e-6), "OPT {e} above LP {lp}");
            assert!(
                lp <= e * 1.06,
                "LP {lp} should be within 6% of OPT {e} at K = 24"
            );
        }
    }
}

#[test]
fn theorem1_universal_optimality_power_function_free() {
    // One schedule, optimal under *every* convex non-decreasing P: compare
    // against fine LPs under qualitatively different power functions.
    let instance = WorkloadSpec::new(Family::Uniform, 5, 2, 77).generate();
    let schedule = optimal_schedule(&instance).unwrap().schedule;
    let powers: [&dyn PowerFunction; 3] = [
        &Polynomial { alpha: 2.0 },
        &AffinePolynomial {
            a: 2.0,
            alpha: 3.0,
            b: 1.0,
            c: 0.0,
        },
        &Exponential,
    ];
    for p in powers {
        let mine = schedule_energy(&schedule, &p);
        let lp = lp_baseline(&instance, &p, 32).unwrap().energy;
        assert!(
            mine <= lp * (1.0 + 1e-6),
            "{}: schedule energy {mine} above LP {lp}",
            p.describe()
        );
    }
}

// ---------------------------------------------------------------- Theorem 2

#[test]
fn theorem2_oa_is_alpha_alpha_competitive() {
    let mut worst: f64 = 0.0;
    for instance in sweep(8, 2) {
        for alpha in ALPHAS {
            let p = Polynomial::new(alpha);
            let oa = oa_schedule(&instance).unwrap();
            let report = competitive_report(&instance, &oa.schedule, &p, p.oa_bound()).unwrap();
            assert!(
                report.within_bound(),
                "α = {alpha}: measured {:.4} > bound {:.4}",
                report.ratio_or_inf(),
                report.bound
            );
            assert!(
                report.ratio_or_inf() >= 1.0 - 1e-6,
                "online beat offline optimum"
            );
            if alpha == 2.0 {
                worst = worst.max(report.ratio_or_inf());
            }
        }
    }
    // OA must actually be online-suboptimal somewhere in the sweep —
    // otherwise the test is vacuous.
    assert!(
        worst > 1.0 + 1e-6,
        "sweep never separated OA from OPT ({worst})"
    );
}

// ---------------------------------------------------------------- Theorem 3

#[test]
fn theorem3_avr_is_bounded_and_its_proof_inequalities_hold() {
    for instance in sweep(8, 2) {
        for alpha in ALPHAS {
            let p = Polynomial::new(alpha);
            let avr = avr_schedule(&instance);
            let report = competitive_report(&instance, &avr, &p, p.avr_bound()).unwrap();
            assert!(
                report.within_bound(),
                "α = {alpha}: AVR ratio {:.4} > bound {:.4}",
                report.ratio_or_inf(),
                report.bound
            );

            // Proof scaffolding: E_AVR(m) ≤ m^{1−α}·(2α)^α/2·E¹_OPT + E_OPT
            // (equation (9) combined with the single-processor AVR bound).
            let e_avr = report.online_energy;
            let e_opt = report.opt_energy;
            let e1_opt = schedule_energy(&yds_schedule(&instance).schedule, &p);
            let m = instance.m as f64;
            let rhs = m.powf(1.0 - alpha) * (2.0 * alpha).powf(alpha) / 2.0 * e1_opt + e_opt;
            assert!(
                e_avr <= rhs * (1.0 + 1e-6),
                "proof inequality broken: E_AVR {e_avr} > {rhs}"
            );

            // And the lower-bound step: E_OPT ≥ m^{1−α} E¹_OPT.
            assert!(
                e_opt >= m.powf(1.0 - alpha) * e1_opt * (1.0 - 1e-6),
                "E_OPT {e_opt} below m^(1-α)·E¹_OPT"
            );
        }
    }
}

#[test]
fn theorem3_adversarial_family_stresses_avr_hardest() {
    // The nested geometric family should produce a larger AVR ratio than
    // the uniform family at the same size.
    let alpha = 3.0;
    let p = Polynomial::new(alpha);
    let ratio_of = |family: Family| {
        let mut worst: f64 = 0.0;
        for seed in 0..4u64 {
            let ins = WorkloadSpec {
                family,
                n: 12,
                m: 1,
                horizon: 4096,
                seed,
            }
            .generate();
            let avr = avr_schedule(&ins);
            let r = competitive_report(&ins, &avr, &p, p.avr_bound()).unwrap();
            worst = worst.max(r.ratio_or_inf());
        }
        worst
    };
    let adversarial = ratio_of(Family::AvrAdversarial);
    let uniform = ratio_of(Family::Uniform);
    assert!(
        adversarial > uniform,
        "adversarial ratio {adversarial} should exceed uniform {uniform}"
    );
    assert!(
        adversarial > 1.3,
        "adversarial family too weak: {adversarial}"
    );
}
