//! Determinism of the `mpss-par` hot paths: every parallel entry point must
//! be a pure work optimisation, producing bit-identical output to its
//! sequential oracle at any thread count — and engine racing must reproduce
//! the single-engine solve exactly, including in exact rational arithmetic
//! on the golden corpus.

use mpss::numeric::rational::rat;
use mpss::numeric::Rational;
use mpss::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(n: usize, m: usize, seed: u64) -> Instance<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = (0..n)
        .map(|_| {
            let r: f64 = rng.gen_range(0.0..15.0);
            let span: f64 = rng.gen_range(0.3..7.0);
            let w: f64 = rng.gen_range(0.1..8.0);
            job(r, r + span, w)
        })
        .collect();
    Instance::new(m, jobs).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Parallel AVR is bit-identical to the sequential loop at every thread
    /// count: chunking per-interval work and splicing in order must not
    /// change a single segment.
    #[test]
    fn parallel_avr_is_bit_identical(
        seed in 0u64..1_000_000, n in 2usize..40, m in 1usize..7
    ) {
        let ins = random_instance(n, m, seed);
        let seq = avr_schedule(&ins);
        for threads in [1usize, 2, 3, 8] {
            let par = avr_schedule_parallel(&ins, &ThreadPool::new(threads));
            prop_assert_eq!(&seq.segments, &par.segments,
                "AVR diverged at {} threads", threads);
        }
    }

    /// Batched solves shard over the pool but return outputs in submission
    /// order, each bit-identical to a solo solve of the same instance.
    #[test]
    fn batched_solves_match_solo_in_order(
        seed in 0u64..1_000_000, k in 2usize..6
    ) {
        let batch: Vec<Instance<f64>> = (0..k)
            .map(|i| random_instance(3 + i, 1 + i % 3, seed.wrapping_add(i as u64)))
            .collect();
        let opts = OfflineOptions::default();
        let outputs = solve_many(&batch, &opts, &ThreadPool::new(8));
        prop_assert_eq!(outputs.len(), batch.len());
        for (ins, out) in batch.iter().zip(&outputs) {
            let solo = optimal_schedule_with(ins, &opts).unwrap();
            let res = out.result.as_ref().unwrap();
            prop_assert_eq!(&solo.schedule.segments, &res.schedule.segments);
            prop_assert_eq!(solo.flow_computations, res.flow_computations);
        }
    }
}

/// Engine racing on the golden corpus, in exact rational arithmetic: the
/// raced solve (Dinic vs push–relabel per probe, first finisher kept) must
/// reproduce the solo-Dinic phases, repair traces and exact energies
/// whichever engine wins each probe — the soundness claim of
/// DESIGN.md's "Parallel execution" section, pinned on exact numbers.
#[test]
fn golden_corpus_racing_equals_single_engine() {
    let fig2: Instance<Rational> = Instance::new(
        2,
        vec![
            job(rat(0, 1), rat(1, 1), rat(6, 1)),
            job(rat(0, 1), rat(2, 1), rat(3, 1)),
            job(rat(0, 1), rat(2, 1), rat(3, 1)),
            job(rat(0, 1), rat(6, 1), rat(2, 1)),
            job(rat(2, 1), rat(8, 1), rat(2, 1)),
        ],
    )
    .unwrap();
    let staircase: Instance<Rational> = Instance::new(
        2,
        vec![
            job(rat(0, 1), rat(1, 1), rat(5, 1)),
            job(rat(0, 1), rat(2, 1), rat(2, 1)),
            job(rat(0, 1), rat(4, 1), rat(1, 1)),
            job(rat(0, 1), rat(8, 1), rat(1, 1)),
        ],
    )
    .unwrap();
    let three: Instance<Rational> =
        Instance::new(2, vec![job(rat(0, 1), rat(3, 1), rat(3, 1)); 3]).unwrap();
    for (name, ins) in [
        ("fig2", fig2),
        ("staircase", staircase),
        ("three-jobs", three),
    ] {
        let solve = |race_engines: bool, warm_start: bool| {
            let opts = OfflineOptions {
                record_trace: true,
                race_engines,
                warm_start,
                ..Default::default()
            };
            optimal_schedule_with(&ins, &opts).unwrap()
        };
        let solo = solve(false, false);
        // The fig2 ladder is the paper's: 6 > 2 > 1/2 > 1/3.
        if name == "fig2" {
            let speeds: Vec<Rational> = solo.phases.iter().map(|p| p.speed).collect();
            assert_eq!(speeds, vec![rat(6, 1), rat(2, 1), rat(1, 2), rat(1, 3)]);
        }
        for warm_start in [true, false] {
            let raced = solve(true, warm_start);
            assert_feasible(&ins, &raced.schedule, 0.0);
            assert_eq!(
                raced.phases.len(),
                solo.phases.len(),
                "{name} warm={warm_start}: phase count under racing"
            );
            for (i, (pa, pb)) in raced.phases.iter().zip(&solo.phases).enumerate() {
                assert_eq!(
                    pa.speed, pb.speed,
                    "{name} warm={warm_start}: phase {i} exact speed"
                );
                assert_eq!(pa.jobs, pb.jobs, "{name} warm={warm_start}: phase {i} jobs");
                assert_eq!(
                    pa.procs, pb.procs,
                    "{name} warm={warm_start}: phase {i} procs"
                );
                assert_eq!(
                    pa.rounds, pb.rounds,
                    "{name} warm={warm_start}: phase {i} rounds"
                );
            }
            assert_eq!(
                raced.flow_computations, solo.flow_computations,
                "{name} warm={warm_start}: flow computations"
            );
            assert_eq!(
                raced
                    .trace
                    .iter()
                    .map(|r| (r.phase, r.candidate_size, r.removed))
                    .collect::<Vec<_>>(),
                solo.trace
                    .iter()
                    .map(|r| (r.phase, r.candidate_size, r.removed))
                    .collect::<Vec<_>>(),
                "{name} warm={warm_start}: repair traces"
            );
            assert_eq!(
                schedule_energy_exact(&raced.schedule, 2),
                schedule_energy_exact(&solo.schedule, 2),
                "{name} warm={warm_start}: exact energy"
            );
        }
    }
}

/// Every probe in a raced solve is won by exactly one engine, and the win
/// counters add up to the probe count.
#[test]
fn race_win_counters_partition_the_probes() {
    let ins = random_instance(12, 3, 7);
    let opts = OfflineOptions {
        race_engines: true,
        ..Default::default()
    };
    let mut rec = RecordingCollector::new();
    let res = mpss::offline::optimal_schedule_observed(&ins, &opts, &mut rec).unwrap();
    let dinic = rec.counter("par.race.dinic_wins");
    let pr = rec.counter("par.race.pr_wins");
    assert_eq!(
        dinic + pr,
        res.flow_computations as u64,
        "every probe must have exactly one race winner"
    );
}

/// The pool honours explicit sizes and `MPSS_THREADS`, and both the batch
/// API and parallel AVR report the effective pool width via obs counters.
#[test]
fn pool_width_is_observable() {
    let ins = random_instance(30, 4, 3);
    let pool = ThreadPool::new(4);
    assert_eq!(pool.threads(), 4);
    let mut rec = RecordingCollector::new();
    let _ = avr_schedule_parallel_observed(&ins, &pool, &mut rec);
    assert_eq!(rec.counter("par.pool.threads"), 4);
    assert!(rec.counter("par.tasks") >= 1);

    let batch = vec![random_instance(4, 2, 1), random_instance(5, 2, 2)];
    let mut rec = RecordingCollector::new();
    let outs = solve_many_observed(&batch, &OfflineOptions::default(), &pool, &mut rec);
    assert_eq!(outs.len(), 2);
    assert_eq!(rec.counter("par.tasks"), 2);
}
