//! Differential testing of the warm-start incremental solver — and the
//! engine-racing portfolio — against the cold oracle.
//!
//! The warm path (`OfflineOptions::warm_start`, the default) reuses the
//! residual network across repair rounds and speed probes instead of
//! rebuilding it; by construction it must be a pure work optimisation. The
//! properties here pin exactly that: on random instances the warm and cold
//! solvers — under *both* max-flow engines — produce bit-identical phase
//! partitions, speeds, reservations and repair traces, and the resulting
//! energy is sandwiched by the independent `lp_baseline` discretisation.

use mpss::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random fractional instance in the ISSUE-mandated differential envelope
/// (`n ≤ 24`, `m ≤ 6`).
fn differential_instance(n: usize, m: usize, seed: u64) -> Instance<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = (0..n)
        .map(|_| {
            let r: f64 = rng.gen_range(0.0..12.0);
            let span: f64 = rng.gen_range(0.4..8.0);
            let w: f64 = rng.gen_range(0.2..9.0);
            job(r, r + span, w)
        })
        .collect();
    Instance::new(m, jobs).unwrap()
}

fn solve(ins: &Instance<f64>, engine: FlowEngine, warm_start: bool) -> OptimalResult<f64> {
    let opts = OfflineOptions {
        record_trace: true,
        engine,
        warm_start,
        ..Default::default()
    };
    mpss::offline::optimal_schedule_with(ins, &opts).unwrap()
}

fn solve_raced(ins: &Instance<f64>, warm_start: bool) -> OptimalResult<f64> {
    let opts = OfflineOptions {
        record_trace: true,
        warm_start,
        race_engines: true,
        ..Default::default()
    };
    mpss::offline::optimal_schedule_with(ins, &opts).unwrap()
}

use mpss::offline::optimal::OptimalResult;

/// Phases must agree bit-for-bit: same job partition, same `f64` speed
/// bits, same reservations, same number of repair rounds. Plain asserts —
/// proptest catches the panic and shrinks as usual.
fn assert_phases_bit_identical(a: &OptimalResult<f64>, b: &OptimalResult<f64>, ctx: &str) {
    assert_eq!(a.phases.len(), b.phases.len(), "{ctx}: phase count");
    for (i, (pa, pb)) in a.phases.iter().zip(&b.phases).enumerate() {
        assert_eq!(
            pa.speed.to_bits(),
            pb.speed.to_bits(),
            "{ctx}: phase {i} speed {} vs {}",
            pa.speed,
            pb.speed
        );
        assert_eq!(pa.jobs, pb.jobs, "{ctx}: phase {i} jobs");
        assert_eq!(pa.procs, pb.procs, "{ctx}: phase {i} procs");
        assert_eq!(pa.rounds, pb.rounds, "{ctx}: phase {i} rounds");
    }
    assert_eq!(
        a.flow_computations, b.flow_computations,
        "{ctx}: flow computations"
    );
    let key: fn(&mpss::offline::optimal::RoundTrace) -> (usize, usize, Option<usize>) =
        |r| (r.phase, r.candidate_size, r.removed);
    assert_eq!(
        a.trace.iter().map(key).collect::<Vec<_>>(),
        b.trace.iter().map(key).collect::<Vec<_>>(),
        "{ctx}: repair traces"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Warm ≡ cold, under both engines, on the full differential envelope.
    #[test]
    fn warm_and_cold_solvers_agree_bit_for_bit(
        seed in 0u64..1_000_000, n in 2usize..25, m in 1usize..7
    ) {
        let ins = differential_instance(n, m, seed);
        let cold = solve(&ins, FlowEngine::Dinic, false);
        prop_assert!(validate_schedule(&ins, &cold.schedule, 1e-6).is_ok());
        let warm = solve(&ins, FlowEngine::Dinic, true);
        prop_assert!(validate_schedule(&ins, &warm.schedule, 1e-6).is_ok());
        assert_phases_bit_identical(&warm, &cold, "dinic warm vs cold");
        let pr_warm = solve(&ins, FlowEngine::PushRelabel, true);
        assert_phases_bit_identical(&pr_warm, &cold, "push-relabel warm vs dinic cold");
        let pr_cold = solve(&ins, FlowEngine::PushRelabel, false);
        assert_phases_bit_identical(&pr_cold, &cold, "push-relabel cold vs dinic cold");
    }

    /// Engine racing ≡ solo Dinic on the same envelope: whichever engine
    /// wins each probe, the flow *value* (and hence every speed, phase and
    /// repair decision) is identical, so the raced solver's output — warm
    /// and cold — matches the single-engine oracle bit-for-bit.
    #[test]
    fn raced_and_solo_solvers_agree_bit_for_bit(
        seed in 0u64..1_000_000, n in 2usize..25, m in 1usize..7
    ) {
        let ins = differential_instance(n, m, seed);
        let cold = solve(&ins, FlowEngine::Dinic, false);
        let raced_warm = solve_raced(&ins, true);
        prop_assert!(validate_schedule(&ins, &raced_warm.schedule, 1e-6).is_ok());
        assert_phases_bit_identical(&raced_warm, &cold, "raced warm vs dinic cold");
        let raced_cold = solve_raced(&ins, false);
        assert_phases_bit_identical(&raced_cold, &cold, "raced cold vs dinic cold");
    }

    /// On small instances both solvers' energy matches the independent LP
    /// discretisation baseline within its convergence tolerance.
    #[test]
    fn both_solvers_match_the_lp_baseline(
        seed in 0u64..1_000_000, n in 2usize..7, m in 1usize..4
    ) {
        let ins = differential_instance(n, m, seed);
        let p = Polynomial::new(2.0);
        let lp = lp_baseline(&ins, &p, 24).unwrap().energy;
        for warm_start in [true, false] {
            let res = solve(&ins, FlowEngine::Dinic, warm_start);
            let opt = schedule_energy(&res.schedule, &p);
            // The LP restricts speeds to a finite grid, so it upper-bounds
            // OPT (up to discretisation), and OPT can undercut it only
            // slightly.
            prop_assert!(opt <= lp * 1.05 + 1e-9,
                "warm {warm_start}: OPT {opt} far above LP {lp}");
            prop_assert!(lp >= opt - 1e-6 * opt,
                "warm {warm_start}: LP {lp} below OPT {opt}");
        }
    }
}

/// The seeded entry point with an empty / nonsense seed still reproduces
/// the cold phases — seeding is capacity-clamped, so it can never change
/// the answer.
#[test]
fn arbitrary_seed_spans_cannot_change_the_result() {
    use mpss::obs::NoopCollector;
    for seed in 0..40u64 {
        let ins = differential_instance(3 + (seed as usize % 9), 1 + (seed as usize % 3), seed);
        let cold = solve(&ins, FlowEngine::Dinic, false);
        // Garbage spans: every job claims to have run over the whole horizon.
        let horizon = ins.max_deadline().unwrap_or(1.0);
        let garbage = SeedPlan {
            spans: vec![vec![(0.0, horizon)]; ins.n()],
        };
        let opts = OfflineOptions {
            record_trace: true,
            ..Default::default()
        };
        let seeded =
            optimal_schedule_seeded(&ins, &opts, Some(&garbage), &mut NoopCollector).unwrap();
        assert_eq!(seeded.phases.len(), cold.phases.len(), "seed {seed}");
        for (pa, pb) in seeded.phases.iter().zip(&cold.phases) {
            assert_eq!(pa.speed.to_bits(), pb.speed.to_bits(), "seed {seed}");
            assert_eq!(pa.jobs, pb.jobs, "seed {seed}");
        }
        assert_eq!(seeded.flow_computations, cold.flow_computations);
        assert!(validate_schedule(&ins, &seeded.schedule, 1e-6).is_ok());
    }
}
