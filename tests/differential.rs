//! Differential testing of the warm-start incremental solver — and the
//! engine-racing portfolio — against the cold oracle.
//!
//! The warm path (`OfflineOptions::warm_start`, the default) reuses the
//! residual network across repair rounds and speed probes instead of
//! rebuilding it; by construction it must be a pure work optimisation. The
//! properties here pin exactly that: on random instances the warm and cold
//! solvers — under *both* max-flow engines — produce bit-identical phase
//! partitions, speeds, reservations and repair traces, and the resulting
//! energy is sandwiched by the independent `lp_baseline` discretisation.

use mpss::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random fractional instance in the ISSUE-mandated differential envelope
/// (`n ≤ 24`, `m ≤ 6`).
fn differential_instance(n: usize, m: usize, seed: u64) -> Instance<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = (0..n)
        .map(|_| {
            let r: f64 = rng.gen_range(0.0..12.0);
            let span: f64 = rng.gen_range(0.4..8.0);
            let w: f64 = rng.gen_range(0.2..9.0);
            job(r, r + span, w)
        })
        .collect();
    Instance::new(m, jobs).unwrap()
}

fn solve(ins: &Instance<f64>, engine: FlowEngine, warm_start: bool) -> OptimalResult<f64> {
    let opts = OfflineOptions {
        record_trace: true,
        engine,
        warm_start,
        ..Default::default()
    };
    mpss::offline::optimal_schedule_with(ins, &opts).unwrap()
}

fn solve_raced(ins: &Instance<f64>, warm_start: bool) -> OptimalResult<f64> {
    let opts = OfflineOptions {
        record_trace: true,
        warm_start,
        race_engines: true,
        ..Default::default()
    };
    mpss::offline::optimal_schedule_with(ins, &opts).unwrap()
}

use mpss::offline::optimal::OptimalResult;

/// Phases must agree bit-for-bit: same job partition, same `f64` speed
/// bits, same reservations, same number of repair rounds. Plain asserts —
/// proptest catches the panic and shrinks as usual.
fn assert_phases_bit_identical(a: &OptimalResult<f64>, b: &OptimalResult<f64>, ctx: &str) {
    assert_eq!(a.phases.len(), b.phases.len(), "{ctx}: phase count");
    for (i, (pa, pb)) in a.phases.iter().zip(&b.phases).enumerate() {
        assert_eq!(
            pa.speed.to_bits(),
            pb.speed.to_bits(),
            "{ctx}: phase {i} speed {} vs {}",
            pa.speed,
            pb.speed
        );
        assert_eq!(pa.jobs, pb.jobs, "{ctx}: phase {i} jobs");
        assert_eq!(pa.procs, pb.procs, "{ctx}: phase {i} procs");
        assert_eq!(pa.rounds, pb.rounds, "{ctx}: phase {i} rounds");
    }
    assert_eq!(
        a.flow_computations, b.flow_computations,
        "{ctx}: flow computations"
    );
    let key: fn(&mpss::offline::optimal::RoundTrace) -> (usize, usize, Option<usize>) =
        |r| (r.phase, r.candidate_size, r.removed);
    assert_eq!(
        a.trace.iter().map(key).collect::<Vec<_>>(),
        b.trace.iter().map(key).collect::<Vec<_>>(),
        "{ctx}: repair traces"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Warm ≡ cold, under both engines, on the full differential envelope.
    #[test]
    fn warm_and_cold_solvers_agree_bit_for_bit(
        seed in 0u64..1_000_000, n in 2usize..25, m in 1usize..7
    ) {
        let ins = differential_instance(n, m, seed);
        let cold = solve(&ins, FlowEngine::Dinic, false);
        prop_assert!(validate_schedule(&ins, &cold.schedule, 1e-6).is_ok());
        let warm = solve(&ins, FlowEngine::Dinic, true);
        prop_assert!(validate_schedule(&ins, &warm.schedule, 1e-6).is_ok());
        assert_phases_bit_identical(&warm, &cold, "dinic warm vs cold");
        let pr_warm = solve(&ins, FlowEngine::PushRelabel, true);
        assert_phases_bit_identical(&pr_warm, &cold, "push-relabel warm vs dinic cold");
        let pr_cold = solve(&ins, FlowEngine::PushRelabel, false);
        assert_phases_bit_identical(&pr_cold, &cold, "push-relabel cold vs dinic cold");
    }

    /// Engine racing ≡ solo Dinic on the same envelope: whichever engine
    /// wins each probe, the flow *value* (and hence every speed, phase and
    /// repair decision) is identical, so the raced solver's output — warm
    /// and cold — matches the single-engine oracle bit-for-bit.
    #[test]
    fn raced_and_solo_solvers_agree_bit_for_bit(
        seed in 0u64..1_000_000, n in 2usize..25, m in 1usize..7
    ) {
        let ins = differential_instance(n, m, seed);
        let cold = solve(&ins, FlowEngine::Dinic, false);
        let raced_warm = solve_raced(&ins, true);
        prop_assert!(validate_schedule(&ins, &raced_warm.schedule, 1e-6).is_ok());
        assert_phases_bit_identical(&raced_warm, &cold, "raced warm vs dinic cold");
        let raced_cold = solve_raced(&ins, false);
        assert_phases_bit_identical(&raced_cold, &cold, "raced cold vs dinic cold");
    }

    /// On small instances both solvers' energy matches the independent LP
    /// discretisation baseline within its convergence tolerance.
    #[test]
    fn both_solvers_match_the_lp_baseline(
        seed in 0u64..1_000_000, n in 2usize..7, m in 1usize..4
    ) {
        let ins = differential_instance(n, m, seed);
        let p = Polynomial::new(2.0);
        let lp = lp_baseline(&ins, &p, 24).unwrap().energy;
        for warm_start in [true, false] {
            let res = solve(&ins, FlowEngine::Dinic, warm_start);
            let opt = schedule_energy(&res.schedule, &p);
            // The LP restricts speeds to a finite grid, so it upper-bounds
            // OPT (up to discretisation), and OPT can undercut it only
            // slightly.
            prop_assert!(opt <= lp * 1.05 + 1e-9,
                "warm {warm_start}: OPT {opt} far above LP {lp}");
            prop_assert!(lp >= opt - 1e-6 * opt,
                "warm {warm_start}: LP {lp} below OPT {opt}");
        }
    }
}

/// The seeded entry point with an empty / nonsense seed still reproduces
/// the cold phases — seeding is capacity-clamped, so it can never change
/// the answer.
#[test]
fn arbitrary_seed_spans_cannot_change_the_result() {
    use mpss::obs::NoopCollector;
    for seed in 0..40u64 {
        let ins = differential_instance(3 + (seed as usize % 9), 1 + (seed as usize % 3), seed);
        let cold = solve(&ins, FlowEngine::Dinic, false);
        // Garbage spans: every job claims to have run over the whole horizon.
        let horizon = ins.max_deadline().unwrap_or(1.0);
        let garbage = SeedPlan {
            spans: vec![vec![(0.0, horizon)]; ins.n()],
        };
        let opts = OfflineOptions {
            record_trace: true,
            ..Default::default()
        };
        let seeded =
            optimal_schedule_seeded(&ins, &opts, Some(&garbage), &mut NoopCollector).unwrap();
        assert_eq!(seeded.phases.len(), cold.phases.len(), "seed {seed}");
        for (pa, pb) in seeded.phases.iter().zip(&cold.phases) {
            assert_eq!(pa.speed.to_bits(), pb.speed.to_bits(), "seed {seed}");
            assert_eq!(pa.jobs, pb.jobs, "seed {seed}");
        }
        assert_eq!(seeded.flow_computations, cold.flow_computations);
        assert!(validate_schedule(&ins, &seeded.schedule, 1e-6).is_ok());
    }
}

// ---------------------------------------------------------------------------
// CSR-vs-legacy differential block.
//
// The flat-arc CSR engines replaced the `Vec<Edge>`-per-node legacy engines
// wholesale; `mpss_maxflow::reference` keeps the legacy implementations alive
// as an oracle. 512 proptest cases, each exercising {Dinic, push-relabel} ×
// {cold, warm}: Dinic must match the oracle bit-for-bit down to per-edge
// flows (its traversal order is part of the golden-corpus contract),
// push-relabel is value- and cut-equivalent (its heuristics legitimately
// pick a different maximum flow), and the warm paths must land on the cold
// oracle's value after a drain + retune.
// ---------------------------------------------------------------------------

use mpss_maxflow::reference::{self, RefNetwork};
use mpss_maxflow::{
    drain_node, set_capacity, Dinic, EdgeId, FlowNetwork, MaxFlow, PushRelabel, WarmStartable,
};

/// Random network over the maxflow differential envelope, returned alongside
/// its legacy mirror (same edges, same insertion order) and the edge-id /
/// endpoint ledger (edge ids are opaque outside the crate, so the generator
/// records them as it goes).
#[allow(clippy::type_complexity)]
fn csr_and_legacy(
    n: usize,
    density: f64,
    seed: u64,
    dag_only: bool,
) -> (
    FlowNetwork<f64>,
    RefNetwork<f64>,
    Vec<(usize, usize, EdgeId)>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net: FlowNetwork<f64> = FlowNetwork::new(n);
    let mut ledger = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && (!dag_only || u < v) && rng.gen_bool(density) {
                let id = net.add_edge(u, v, rng.gen_range(0..=20u32) as f64 / 2.0);
                ledger.push((u, v, id));
            }
        }
    }
    let legacy = RefNetwork::from_network(&net);
    (net, legacy, ledger)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// One case = one network, all four engine × warmth combinations
    /// checked against the legacy oracle.
    #[test]
    fn csr_engines_match_the_legacy_oracle(
        seed in 0u64..1_000_000, n in 3usize..16, density in 0.1f64..0.6
    ) {
        let (cold_net, legacy_net, ledger) = csr_and_legacy(n, density, seed, false);
        let (s, t) = (0usize, n - 1);

        // Cold Dinic: value AND per-edge flows bit-identical.
        let mut d_net = cold_net.clone();
        let mut dinic = Dinic::new();
        let f_dinic = dinic.max_flow(&mut d_net, s, t);
        let mut d_legacy = legacy_net.clone();
        let (f_ref, _) = reference::dinic(&mut d_legacy, s, t);
        prop_assert_eq!(f_dinic.to_bits(), f_ref.to_bits(), "dinic value {} vs {}", f_dinic, f_ref);
        for ((_, _, id), f_ref_edge) in ledger.iter().zip(d_legacy.flows()) {
            prop_assert_eq!(
                d_net.flow(*id).to_bits(),
                f_ref_edge.to_bits(),
                "dinic per-edge flow diverged on edge {:?}", id
            );
        }

        // Cold push-relabel: same value (up to float associativity — the
        // heuristics push in a different order) and the same canonical
        // min-cut certificate.
        let mut p_net = cold_net.clone();
        let mut pr = PushRelabel::new();
        let f_pr = pr.max_flow(&mut p_net, s, t);
        let mut p_legacy = legacy_net.clone();
        let (f_pref, _) = reference::push_relabel(&mut p_legacy, s, t);
        prop_assert!(
            (f_pr - f_pref).abs() <= 1e-9 * f_pref.abs().max(1.0),
            "push-relabel value {} vs legacy {}", f_pr, f_pref
        );
        prop_assert_eq!(
            p_net.residual_reachable(s),
            p_legacy.residual_reachable(s),
            "push-relabel min-cut certificates diverged"
        );

        // Warm restart, both engines: drain node 1's throughput, zero its
        // supply edges, re-augment — must land on the legacy cold value of
        // the modified network.
        if n > 2 {
            // Warm restart exercises drain_node's flow-cancellation walks,
            // which assume acyclic flow (the offline model's shape) — so this
            // leg re-rolls the same seed as a DAG instance.
            let (dag_net, dag_legacy, dag_ledger) = csr_and_legacy(n, density, seed, true);
            let victim = 1usize;
            let mut expect_legacy = dag_legacy.clone();
            for (e, &(from, to, _)) in dag_ledger.iter().enumerate() {
                if from == s && to == victim {
                    expect_legacy.zero_capacity(e as u32);
                }
            }
            let (f_expect, _) = reference::dinic(&mut expect_legacy, s, t);

            for engine_is_dinic in [true, false] {
                let mut warm = dag_net.clone();
                let f_warm = if engine_is_dinic {
                    let mut engine = Dinic::new();
                    engine.max_flow(&mut warm, s, t);
                    drain_node(&mut warm, victim, s, t);
                    for &(from, to, id) in &dag_ledger {
                        if from == s && to == victim {
                            set_capacity(&mut warm, id, 0.0, s, t);
                        }
                    }
                    engine.re_max_flow(&mut warm, s, t)
                } else {
                    let mut engine = PushRelabel::new();
                    engine.max_flow(&mut warm, s, t);
                    drain_node(&mut warm, victim, s, t);
                    for &(from, to, id) in &dag_ledger {
                        if from == s && to == victim {
                            set_capacity(&mut warm, id, 0.0, s, t);
                        }
                    }
                    engine.re_max_flow(&mut warm, s, t)
                };
                prop_assert!(
                    (f_warm - f_expect).abs() <= 1e-9 * f_expect.abs().max(1.0),
                    "warm {} restart {} vs legacy cold {}",
                    if engine_is_dinic { "dinic" } else { "push-relabel" }, f_warm, f_expect
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Prepared-vs-scratch differential block.
//
// `optimal_schedule_prepared` with a `PreparedInstance` skips the scratch
// partition sort, the per-round activity probes, and the per-build activity
// scans in favour of precomputed contiguous event ranges. By construction it
// must be a pure work optimisation: on *exact rational* arithmetic — where
// "close" cannot hide a divergence — the prepared path must reproduce the
// scratch solver's phases, segments and energy exactly, under both engines,
// on general (non-staircase) instances.
// ---------------------------------------------------------------------------

use mpss::numeric::rational::rat;
use mpss::numeric::Rational;
use mpss::obs::NoopCollector;
use mpss::offline::{optimal_schedule_prepared, IncrementalPlanner, PreparedInstance};

/// Deterministic general rational instance: releases, deadlines and volumes
/// on a half-integer grid driven by a tiny LCG (exactness is the point, not
/// distribution quality).
fn rational_instance(seed: u64) -> Instance<Rational> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move |modulus: i64| -> i128 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i64).rem_euclid(modulus) as i128
    };
    let n = 2 + (next(6) as usize);
    let m = 1 + (next(3) as usize);
    let jobs = (0..n)
        .map(|_| {
            let r = rat(next(12), 2);
            let d = r + rat(1 + next(10), 2);
            job(r, d, rat(1 + next(9), 3))
        })
        .collect();
    Instance::new(m, jobs).unwrap()
}

/// Prepared ≡ scratch on exact rationals, both engines: identical phases
/// (speeds, memberships, reservations, rounds), identical segments, and
/// identical exact energy.
#[test]
fn prepared_path_matches_scratch_exactly_on_rationals() {
    use mpss::model::energy::schedule_energy_exact;

    for seed in 0..48u64 {
        let ins = rational_instance(seed);
        let prepared = PreparedInstance::derive(&ins);
        for engine in [FlowEngine::Dinic, FlowEngine::PushRelabel] {
            let opts = OfflineOptions {
                engine,
                ..Default::default()
            };
            let scratch = mpss::offline::optimal_schedule_with(&ins, &opts).unwrap();
            let fast =
                optimal_schedule_prepared(&ins, &opts, None, Some(&prepared), &mut NoopCollector)
                    .unwrap();
            let ctx = format!("seed {seed} engine {engine:?}");
            assert_eq!(
                fast.phases.len(),
                scratch.phases.len(),
                "{ctx}: phase count"
            );
            for (i, (pa, pb)) in fast.phases.iter().zip(&scratch.phases).enumerate() {
                assert_eq!(pa.speed, pb.speed, "{ctx}: phase {i} speed");
                assert_eq!(pa.jobs, pb.jobs, "{ctx}: phase {i} jobs");
                assert_eq!(pa.procs, pb.procs, "{ctx}: phase {i} procs");
                assert_eq!(pa.rounds, pb.rounds, "{ctx}: phase {i} rounds");
            }
            assert_eq!(
                fast.flow_computations, scratch.flow_computations,
                "{ctx}: flow computations"
            );
            assert_eq!(
                fast.schedule.segments, scratch.schedule.segments,
                "{ctx}: segments"
            );
            assert_eq!(
                schedule_energy_exact(&fast.schedule, 2),
                schedule_energy_exact(&scratch.schedule, 2),
                "{ctx}: exact energy"
            );
        }
    }
}

/// The planner's spliced partitions feed the same prepared path: syncing a
/// live set must be indistinguishable from deriving the staircase instance
/// from scratch — on exact rationals, where a mispatched breakpoint cannot
/// round away.
#[test]
fn planner_sync_equals_scratch_derivation_on_rationals() {
    let mut planner: IncrementalPlanner<Rational> = IncrementalPlanner::new();
    // An evolving live set: arrivals and removals over a shared deadline grid.
    let steps: Vec<(i128, Vec<(usize, i128)>)> = vec![
        (0, vec![(0, 4), (1, 8)]),
        (1, vec![(0, 4), (1, 8), (2, 6)]),
        (2, vec![(1, 8), (2, 6), (3, 12)]),
        (4, vec![(1, 8), (3, 12)]),
        (5, vec![(1, 8), (3, 12), (4, 9), (5, 9)]),
    ];
    for (now, live) in steps {
        let now = rat(now, 1);
        let live: Vec<(usize, Rational)> = live.into_iter().map(|(k, d)| (k, rat(d, 1))).collect();
        let (synced, _) = planner.sync(now, &live);
        let jobs = live
            .iter()
            .map(|&(_, d)| job(now, d, rat(1, 1)))
            .collect::<Vec<_>>();
        let ins = Instance::new(2, jobs).unwrap();
        let scratch = PreparedInstance::derive(&ins);
        assert_eq!(synced.intervals, scratch.intervals, "now {now}: partition");
        assert_eq!(synced.ranges, scratch.ranges, "now {now}: ranges");
    }
}

// ---------------------------------------------------------------------------
// Incremental-vs-scratch session differential block.
//
// `OaSession` keeps its `IncrementalPlanner` across replans by default; the
// from-scratch path (`set_incremental(false)`) is the retained oracle. On
// random arrival/advance streams — under both engines — the two must agree
// on every observable: executed segments bit-for-bit, replan and max-flow
// counts, and the serialized checkpoint (the planner is deliberately not
// checkpointed, so the frozen states must be indistinguishable too).
// ---------------------------------------------------------------------------

use mpss::online::OaSession;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_and_scratch_sessions_agree_bit_for_bit(
        seed in 0u64..1_000_000, n_events in 3usize..28, m in 1usize..5
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // One pre-rolled stream, replayed into every session.
        let mut now = 0.0f64;
        let mut stream: Vec<(f64, Option<(f64, f64)>)> = Vec::new();
        for _ in 0..n_events {
            if rng.gen_bool(0.35) {
                now += rng.gen_range(0.1..3.0);
            }
            let arrival = rng.gen_bool(0.75).then(|| {
                let span: f64 = rng.gen_range(0.3..9.0);
                let volume: f64 = rng.gen_range(0.2..6.0);
                (now + span, volume)
            });
            stream.push((now, arrival));
        }

        for engine in [FlowEngine::Dinic, FlowEngine::PushRelabel] {
            let run = |incremental: bool| {
                let mut s = OaSession::with_engine(m, 0.0, engine);
                s.set_incremental(incremental);
                for &(t, arrival) in &stream {
                    s.advance_to(t).unwrap();
                    if let Some((deadline, volume)) = arrival {
                        s.arrive(deadline, volume).unwrap();
                    }
                }
                s
            };
            let incr = run(true);
            let scratch = run(false);
            let ctx = format!("seed {seed} engine {engine:?}");

            prop_assert_eq!(incr.replans(), scratch.replans(), "{}: replans", ctx);
            prop_assert_eq!(
                incr.flow_computations(), scratch.flow_computations(),
                "{}: flow computations", ctx
            );
            prop_assert_eq!(
                incr.checkpoint().to_json().render(),
                scratch.checkpoint().to_json().render(),
                "{}: checkpoints diverged", ctx
            );
            let a = incr.finish().unwrap();
            let b = scratch.finish().unwrap();
            prop_assert_eq!(a.segments.len(), b.segments.len(), "{}: segment count", ctx);
            for (sa, sb) in a.segments.iter().zip(&b.segments) {
                prop_assert_eq!(sa.proc, sb.proc, "{}: proc", ctx);
                prop_assert_eq!(sa.job, sb.job, "{}: job", ctx);
                prop_assert_eq!(sa.start.to_bits(), sb.start.to_bits(), "{}: start", ctx);
                prop_assert_eq!(sa.end.to_bits(), sb.end.to_bits(), "{}: end", ctx);
                prop_assert_eq!(sa.speed.to_bits(), sb.speed.to_bits(), "{}: speed", ctx);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The `offline.*` counters are an engine- and warmth-invariant record
    /// of solver structure: phases, repair rounds, removals and max-flow
    /// invocations must not depend on which engine ran or whether the
    /// residual network was reused. (`offline.cold_rounds_avoided` is the
    /// deliberate exception — it *measures* warmth — and must be zero on
    /// every cold run.)
    #[test]
    fn offline_counters_are_engine_and_warmth_invariant(
        seed in 0u64..1_000_000, n in 2usize..15, m in 1usize..5
    ) {
        use mpss::obs::RecordingCollector;

        let ins = differential_instance(n, m, seed);
        let mut runs = Vec::new();
        for engine in [FlowEngine::Dinic, FlowEngine::PushRelabel] {
            for warm_start in [false, true] {
                let opts = OfflineOptions { engine, warm_start, ..Default::default() };
                let mut rec = RecordingCollector::new();
                mpss::offline::optimal_schedule_observed(&ins, &opts, &mut rec).unwrap();
                if !warm_start {
                    prop_assert_eq!(rec.counter("offline.cold_rounds_avoided"), 0,
                        "cold run claimed warm reuse");
                }
                let invariant: Vec<(String, u64)> = rec
                    .counters()
                    .filter(|(k, _)| k.starts_with("offline.") && *k != "offline.cold_rounds_avoided")
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                runs.push((format!("{engine:?} warm={warm_start}"), invariant));
            }
        }
        let (baseline_name, baseline) = &runs[0];
        for (name, counters) in &runs[1..] {
            prop_assert_eq!(
                counters, baseline,
                "offline.* counters diverged: {} vs {}", name, baseline_name
            );
        }
    }
}
