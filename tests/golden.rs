//! Golden regression tests: fixed instances with *exact* expected outputs
//! (speed ladders, phase memberships, energies as rationals). Any change to
//! the offline algorithm, the max-flow engines, the packing, or the
//! arithmetic that alters observable results trips these immediately.

use mpss::model::energy::schedule_energy_exact;
use mpss::model::validate::assert_feasible;
use mpss::numeric::rational::rat;
use mpss::numeric::Rational;
use mpss::offline::optimal_schedule;
use mpss::online::{avr_schedule, oa_schedule};
use mpss::prelude::{job, FlowEngine, Instance, OfflineOptions};

/// The Fig. 2-trace instance: 5 jobs, 2 processors, 4 speed levels.
fn fig2_instance() -> Instance<Rational> {
    Instance::new(
        2,
        vec![
            job(rat(0, 1), rat(1, 1), rat(6, 1)),
            job(rat(0, 1), rat(2, 1), rat(3, 1)),
            job(rat(0, 1), rat(2, 1), rat(3, 1)),
            job(rat(0, 1), rat(6, 1), rat(2, 1)),
            job(rat(2, 1), rat(8, 1), rat(2, 1)),
        ],
    )
    .unwrap()
}

#[test]
fn golden_fig2_phase_structure() {
    let res = optimal_schedule(&fig2_instance()).unwrap();
    assert_feasible(&fig2_instance(), &res.schedule, 0.0);

    // Exact ladder: 6 > 2 > 1/2 > 1/3.
    let speeds: Vec<Rational> = res.phases.iter().map(|p| p.speed).collect();
    assert_eq!(speeds, vec![rat(6, 1), rat(2, 1), rat(1, 2), rat(1, 3)]);

    // Exact memberships.
    assert_eq!(res.phases[0].jobs, vec![0]);
    assert_eq!(res.phases[1].jobs, vec![1, 2]);
    assert_eq!(res.phases[2].jobs, vec![3]);
    assert_eq!(res.phases[3].jobs, vec![4]);

    // Exact energies: E[s²] = 36·1 + 4·3 + (1/4)·4 + (1/9)·6 = 149/3.
    assert_eq!(schedule_energy_exact(&res.schedule, 2), rat(149, 3));
    // E[s³] = 216·1 + 8·3 + (1/8)·4 + (1/27)·6 = 4333/18.
    assert_eq!(schedule_energy_exact(&res.schedule, 3), rat(4333, 18));
}

#[test]
fn golden_staircase_m2() {
    let ins: Instance<Rational> = Instance::new(
        2,
        vec![
            job(rat(0, 1), rat(1, 1), rat(5, 1)),
            job(rat(0, 1), rat(2, 1), rat(2, 1)),
            job(rat(0, 1), rat(4, 1), rat(1, 1)),
            job(rat(0, 1), rat(8, 1), rat(1, 1)),
        ],
    )
    .unwrap();
    let res = optimal_schedule(&ins).unwrap();
    assert_feasible(&ins, &res.schedule, 0.0);
    let speeds: Vec<Rational> = res.phases.iter().map(|p| p.speed).collect();
    // Phase 1: the density-5 job alone in [0,1). Phase 2: job 1 at speed 1
    // in [0,2). Phase 3: job 2 gets 1 processor in [1,2) and [2,4) — three
    // reserved time units for volume 1 ⇒ speed 1/3. Phase 4: job 3 gets
    // [2,4) and [4,8) — six units ⇒ 1/6.
    assert_eq!(speeds, vec![rat(5, 1), rat(1, 1), rat(1, 3), rat(1, 6)]);
    assert_eq!(res.phases[2].jobs, vec![2]);
    assert_eq!(res.phases[3].jobs, vec![3]);
    // Lemma 3 processor reservations, exactly.
    assert_eq!(res.phases[0].procs, vec![1, 0, 0, 0]);
    assert_eq!(res.phases[1].procs, vec![1, 1, 0, 0]);
    assert_eq!(res.phases[2].procs, vec![0, 1, 1, 0]);
    assert_eq!(res.phases[3].procs, vec![0, 0, 1, 1]);
}

#[test]
fn golden_online_runs() {
    let ins = fig2_instance();
    let oa = oa_schedule(&ins).unwrap();
    assert_feasible(&ins, &oa.schedule, 0.0);
    // Arrivals at t = 0 and t = 2 ⇒ exactly 2 replans.
    assert_eq!(oa.replans, 2);
    // OA's exact energy: the t=0 plan is followed on [0,2); job 4 arrives
    // at t = 2 and — because it can be planned without disturbing anything
    // already decided — OA lands exactly on the offline optimum here.
    let e_oa = schedule_energy_exact(&oa.schedule, 2);
    assert_eq!(e_oa, rat(149, 3));
    let e_opt = schedule_energy_exact(&optimal_schedule(&ins).unwrap().schedule, 2);
    assert_eq!(e_oa, e_opt, "on this instance OA achieves OPT exactly");

    let avr = avr_schedule(&ins);
    assert_feasible(&ins, &avr, 0.0);
    let e_avr = schedule_energy_exact(&avr, 2);
    assert!(e_avr >= e_opt);
    // Theorem bounds, exactly.
    assert!(e_oa <= rat(4, 1) * e_opt);
    assert!(e_avr <= rat(9, 1) * e_opt);
}

/// The warm-start smoke gate: on the whole golden corpus, in *exact*
/// rational arithmetic, the warm incremental solver must reproduce the cold
/// oracle's phases — same speeds (exact equality), memberships,
/// reservations, repair-round counts, and the same total number of flow
/// computations — under both engines. CI runs this as the warm-vs-cold
/// smoke check.
#[test]
fn golden_corpus_warm_equals_cold() {
    let staircase: Instance<Rational> = Instance::new(
        2,
        vec![
            job(rat(0, 1), rat(1, 1), rat(5, 1)),
            job(rat(0, 1), rat(2, 1), rat(2, 1)),
            job(rat(0, 1), rat(4, 1), rat(1, 1)),
            job(rat(0, 1), rat(8, 1), rat(1, 1)),
        ],
    )
    .unwrap();
    let three: Instance<Rational> =
        Instance::new(2, vec![job(rat(0, 1), rat(3, 1), rat(3, 1)); 3]).unwrap();
    for (name, ins) in [
        ("fig2", fig2_instance()),
        ("staircase", staircase),
        ("three-jobs", three),
    ] {
        let solve = |engine: FlowEngine, warm_start: bool| {
            let opts = OfflineOptions {
                record_trace: true,
                engine,
                warm_start,
                ..Default::default()
            };
            mpss::offline::optimal_schedule_with(&ins, &opts).unwrap()
        };
        let cold = solve(FlowEngine::Dinic, false);
        for (tag, engine) in [
            ("dinic", FlowEngine::Dinic),
            ("pr", FlowEngine::PushRelabel),
        ] {
            for warm_start in [true, false] {
                let res = solve(engine, warm_start);
                assert_feasible(&ins, &res.schedule, 0.0);
                assert_eq!(
                    res.phases.len(),
                    cold.phases.len(),
                    "{name}/{tag} warm={warm_start}: phase count"
                );
                for (i, (pa, pb)) in res.phases.iter().zip(&cold.phases).enumerate() {
                    assert_eq!(
                        pa.speed, pb.speed,
                        "{name}/{tag} warm={warm_start}: phase {i} speed"
                    );
                    assert_eq!(pa.jobs, pb.jobs, "{name}/{tag} warm={warm_start}: jobs");
                    assert_eq!(pa.procs, pb.procs, "{name}/{tag} warm={warm_start}: procs");
                    assert_eq!(
                        pa.rounds, pb.rounds,
                        "{name}/{tag} warm={warm_start}: rounds"
                    );
                }
                assert_eq!(
                    res.flow_computations, cold.flow_computations,
                    "{name}/{tag} warm={warm_start}: flow computations"
                );
                assert_eq!(
                    res.trace
                        .iter()
                        .map(|r| (r.phase, r.candidate_size, r.removed))
                        .collect::<Vec<_>>(),
                    cold.trace
                        .iter()
                        .map(|r| (r.phase, r.candidate_size, r.removed))
                        .collect::<Vec<_>>(),
                    "{name}/{tag} warm={warm_start}: repair traces"
                );
                assert_eq!(
                    schedule_energy_exact(&res.schedule, 2),
                    schedule_energy_exact(&cold.schedule, 2),
                    "{name}/{tag} warm={warm_start}: exact energy"
                );
            }
        }
    }
}

#[test]
fn golden_three_jobs_two_procs() {
    // The running example of the README/docs: uniform speed 3/2.
    let ins: Instance<Rational> =
        Instance::new(2, vec![job(rat(0, 1), rat(3, 1), rat(3, 1)); 3]).unwrap();
    let res = optimal_schedule(&ins).unwrap();
    assert_eq!(res.phases.len(), 1);
    assert_eq!(res.phases[0].speed, rat(3, 2));
    assert_eq!(schedule_energy_exact(&res.schedule, 2), rat(27, 2));
    assert_eq!(schedule_energy_exact(&res.schedule, 3), rat(81, 4));
    // Exactly one job migrates under wrap-around packing.
    assert_eq!(res.schedule.migrations(), 1);
}
