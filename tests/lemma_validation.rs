//! The paper's lemmas as an executable index. Several lemmas are also
//! checked in crate unit tests; this file is the one-stop, cross-crate
//! validation that maps each lemma number to a concrete check.

use mpss::model::transform::rebase_to_zero;
use mpss::offline::canonical::canonicalize;
use mpss::prelude::*;

fn sweep() -> Vec<Instance<f64>> {
    [
        Family::Uniform,
        Family::Bursty,
        Family::Laminar,
        Family::TightLoad,
    ]
    .iter()
    .flat_map(|&family| {
        (0..3u64).map(move |seed| {
            WorkloadSpec {
                family,
                n: 9,
                m: 3,
                horizon: 18,
                seed,
            }
            .generate()
        })
    })
    .collect()
}

/// **Lemma 1** — every job can run at one constant speed without raising
/// energy: canonicalization (which enforces exactly that) never increases
/// energy on feasible schedules and the optimum already satisfies it.
#[test]
fn lemma1_constant_job_speeds() {
    for ins in sweep() {
        let opt = optimal_schedule(&ins).unwrap();
        for k in 0..ins.n() {
            let speeds: Vec<f64> = opt
                .schedule
                .segments
                .iter()
                .filter(|s| s.job == k)
                .map(|s| s.speed)
                .collect();
            for w in speeds.windows(2) {
                assert!(
                    (w[0] - w[1]).abs() <= 1e-9 * w[0].max(1.0),
                    "job {k} runs at two speeds in the optimum"
                );
            }
        }
        let canon = canonicalize(&ins, &opt.schedule);
        let p = Polynomial::new(2.0);
        assert!(schedule_energy(&canon, &p) <= schedule_energy(&opt.schedule, &p) * (1.0 + 1e-9));
    }
}

/// **Lemma 2** — per interval, every processor runs one constant speed.
#[test]
fn lemma2_constant_per_processor_interval_speeds() {
    for ins in sweep() {
        let opt = optimal_schedule(&ins).unwrap();
        let iv = Intervals::from_instance(&ins);
        for j in 0..iv.len() {
            let (a, b) = iv.bounds(j);
            for proc in 0..ins.m {
                // All segments of this processor inside I_j share a speed.
                let speeds: Vec<f64> = opt
                    .schedule
                    .segments
                    .iter()
                    .filter(|s| s.proc == proc && s.start >= a - 1e-12 && s.end <= b + 1e-12)
                    .map(|s| s.speed)
                    .collect();
                for w in speeds.windows(2) {
                    assert!(
                        (w[0] - w[1]).abs() <= 1e-9 * w[0].max(1.0),
                        "processor {proc} changes speed inside interval {j}"
                    );
                }
            }
        }
    }
}

/// **Lemma 3** — the reservation formula
/// `m_ij = min(n_ij, m − Σ_{l<i} m_lj)`, checked directly on the phase
/// records the algorithm emits.
#[test]
fn lemma3_processor_reservation_formula() {
    for ins in sweep() {
        let res = optimal_schedule(&ins).unwrap();
        let iv = &res.intervals;
        let mut used = vec![0usize; iv.len()];
        for phase in &res.phases {
            #[allow(clippy::needless_range_loop)] // j indexes used[] and procs[] together
            for j in 0..iv.len() {
                let n_ij = phase
                    .jobs
                    .iter()
                    .filter(|&&k| iv.job_active(&ins.jobs[k], j))
                    .count();
                let expected = n_ij.min(ins.m - used[j]);
                assert_eq!(
                    phase.procs[j], expected,
                    "Lemma 3 violated in interval {j}: m_ij = {} but min(n_ij={n_ij}, avail={}) = {expected}",
                    phase.procs[j],
                    ins.m - used[j]
                );
                used[j] += phase.procs[j];
            }
        }
    }
}

/// **Lemma 3 corollary** — in every interval the reserved processors of a
/// phase are *fully busy* (that is what makes `s = W/P` the exact speed).
#[test]
fn lemma3_reserved_processors_are_fully_busy() {
    for ins in sweep() {
        let res = optimal_schedule(&ins).unwrap();
        let iv = &res.intervals;
        for j in 0..iv.len() {
            let (a, b) = iv.bounds(j);
            let len = b - a;
            let total_reserved: usize = res.phases.iter().map(|p| p.procs[j]).sum();
            // Total busy time in I_j must be exactly reserved × |I_j|.
            let busy: f64 = res
                .schedule
                .segments
                .iter()
                .map(|s| (s.end.min(b) - s.start.max(a)).max(0.0))
                .sum();
            assert!(
                (busy - total_reserved as f64 * len).abs() <= 1e-6 * (busy.max(1.0)),
                "interval {j}: busy {busy} ≠ reserved {total_reserved}·{len}"
            );
        }
    }
}

/// **Lemmas 4/5** — the phase loop's correctness shows up as: the candidate
/// set accepted by each phase is *maximal* (adding back any removed job at
/// this speed is infeasible). We check the observable consequence: speeds
/// strictly decrease and every job lands in exactly one phase.
#[test]
fn lemma45_phase_partition_is_a_strictly_decreasing_ladder() {
    for ins in sweep() {
        let res = optimal_schedule(&ins).unwrap();
        let mut seen = vec![false; ins.n()];
        for phase in &res.phases {
            for &k in &phase.jobs {
                assert!(!seen[k]);
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
        for w in res.phases.windows(2) {
            assert!(w[0].speed > w[1].speed - 1e-12);
        }
    }
}

/// **Lemma 9** — if OA finishes a job early, the minimum machine speed
/// until that job's deadline stays at least the job's speed. Checked on
/// the *offline* schedule of an all-released instance (the form the lemma
/// is used in).
#[test]
fn lemma9_early_finishers_leave_fast_machines_behind() {
    for mut ins in sweep() {
        for j in &mut ins.jobs {
            j.release = 0.0;
        }
        let ins = rebase_to_zero(&ins);
        let res = optimal_schedule(&ins).unwrap();
        for (k, job) in ins.jobs.iter().enumerate() {
            let Some(speed_k) = res.speed_of(k) else {
                continue;
            };
            let finish = res
                .schedule
                .segments
                .iter()
                .filter(|s| s.job == k)
                .map(|s| s.end)
                .fold(0.0f64, f64::max);
            if finish >= job.deadline - 1e-9 {
                continue; // finishes at its deadline: nothing to check
            }
            // Sample the window (finish, deadline): every instant must have
            // all m processors at speed ≥ speed_k... when all are busy; the
            // lemma's statement is about min speed across processors.
            for i in 0..8 {
                let t = finish + (job.deadline - finish) * (i as f64 + 0.5) / 8.0;
                let min_speed = (0..ins.m)
                    .map(|p| res.schedule.speed_at(p, t))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    min_speed >= speed_k - 1e-6 * speed_k.max(1.0),
                    "job {k} (speed {speed_k}) finished at {finish} but min speed at {t} is {min_speed}"
                );
            }
        }
    }
}
