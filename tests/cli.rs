//! End-to-end tests of the `mpss-cli` binary: generate → solve → online →
//! bounds → check, driving the real executable.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpss-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mpss-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn mpss-cli");
    assert!(
        out.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn generate_solve_online_bounds_roundtrip() {
    let trace = tmp("roundtrip.json");
    let sched = tmp("roundtrip-schedule.json");

    let out = run_ok(cli().args([
        "generate",
        "--family",
        "uniform",
        "--n",
        "8",
        "--m",
        "2",
        "--horizon",
        "16",
        "--seed",
        "7",
        "-o",
        trace.to_str().unwrap(),
    ]));
    assert!(out.contains("8 jobs on 2 processors"));

    let out = run_ok(cli().args([
        "solve",
        trace.to_str().unwrap(),
        "--alpha",
        "2",
        "--gantt",
        "--save-schedule",
        sched.to_str().unwrap(),
    ]));
    assert!(out.contains("speed levels"));
    assert!(out.contains("energy (P = s^2)"));
    assert!(out.contains("P0")); // gantt rendered
    assert!(sched.exists());

    let out = run_ok(cli().args(["check", trace.to_str().unwrap(), sched.to_str().unwrap()]));
    assert!(out.contains("FEASIBLE"));

    for algo in ["oa", "avr"] {
        let out = run_ok(cli().args([
            "online",
            trace.to_str().unwrap(),
            "--algo",
            algo,
            "--alpha",
            "2",
        ]));
        assert!(out.contains("within bound  : yes"), "{algo}: {out}");
    }

    let out = run_ok(cli().args(["bounds", trace.to_str().unwrap(), "--alpha", "2"]));
    assert!(out.contains("minimum feasible peak speed"));
}

#[test]
fn solve_and_online_write_observability_reports() {
    let trace = tmp("report-trace.json");
    run_ok(cli().args([
        "generate",
        "--family",
        "uniform",
        "--n",
        "8",
        "--m",
        "2",
        "--horizon",
        "16",
        "--seed",
        "11",
        "-o",
        trace.to_str().unwrap(),
    ]));

    // solve --report: per-phase spans + max-flow work counters.
    let report = tmp("solve-report.json");
    let out = run_ok(cli().args([
        "solve",
        trace.to_str().unwrap(),
        "--report",
        report.to_str().unwrap(),
    ]));
    assert!(out.contains("run report saved"));
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
    // The span tree wraps the whole computation with one child per phase.
    let root = &doc["spans"][0];
    assert_eq!(root["name"], "offline.optimal_schedule");
    let phase_spans = root["children"].as_array().unwrap();
    assert!(!phase_spans.is_empty());
    assert!(phase_spans.iter().all(|s| s["name"] == "offline.phase"));
    // Work counters: total max-flow invocations and Dinic augmenting paths.
    let counters = &doc["counters"];
    assert_eq!(
        counters["offline.phases"].as_u64().unwrap(),
        phase_spans.len() as u64
    );
    assert!(counters["offline.maxflow.invocations"].as_u64().unwrap() >= 1);
    assert!(counters["maxflow.dinic.augmenting_paths"].as_u64().unwrap() >= 1);
    // Per-phase latency histogram, auto-folded from the phase spans.
    assert_eq!(
        doc["histograms"]["span.offline.phase.ms"]["count"]
            .as_u64()
            .unwrap(),
        phase_spans.len() as u64
    );

    // online --algo oa --report: replan spans nesting offline runs.
    let oa_report = tmp("oa-report.json");
    run_ok(cli().args([
        "online",
        trace.to_str().unwrap(),
        "--algo",
        "oa",
        "--report",
        oa_report.to_str().unwrap(),
    ]));
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&oa_report).unwrap()).unwrap();
    let counters = &doc["counters"];
    assert!(counters["oa.replans"].as_u64().unwrap() >= 1);
    assert!(counters["oa.maxflow.invocations"].as_u64().unwrap() >= 1);
    assert!(counters["driver.segments"].as_u64().unwrap() >= 1);
    assert_eq!(
        doc["histograms"]["span.oa.replan.ms"]["count"]
            .as_u64()
            .unwrap(),
        counters["oa.replans"].as_u64().unwrap()
    );
    assert!(doc["histograms"]["driver.energy_trajectory"]["count"]
        .as_u64()
        .unwrap()
        .ge(&1));
}

#[test]
fn bkp_requires_single_processor_traces() {
    let trace = tmp("bkp-m1.json");
    run_ok(cli().args([
        "generate",
        "--family",
        "bursty",
        "--n",
        "5",
        "--m",
        "1",
        "--horizon",
        "12",
        "--seed",
        "2",
        "-o",
        trace.to_str().unwrap(),
    ]));
    let out = run_ok(cli().args(["online", trace.to_str().unwrap(), "--algo", "bkp"]));
    assert!(out.contains("BKP"));

    // And an m = 2 trace is rejected with a clear error.
    let trace2 = tmp("bkp-m2.json");
    run_ok(cli().args([
        "generate",
        "--family",
        "bursty",
        "--n",
        "5",
        "--m",
        "2",
        "--horizon",
        "12",
        "--seed",
        "2",
        "-o",
        trace2.to_str().unwrap(),
    ]));
    let out = cli()
        .args(["online", trace2.to_str().unwrap(), "--algo", "bkp"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("single-processor"));
}

#[test]
fn corrupted_schedule_fails_check() {
    let trace = tmp("corrupt.json");
    let sched = tmp("corrupt-schedule.json");
    run_ok(cli().args([
        "generate",
        "--family",
        "uniform",
        "--n",
        "4",
        "--m",
        "1",
        "--horizon",
        "10",
        "--seed",
        "3",
        "-o",
        trace.to_str().unwrap(),
    ]));
    run_ok(cli().args([
        "solve",
        trace.to_str().unwrap(),
        "--save-schedule",
        sched.to_str().unwrap(),
    ]));
    // Corrupt: drop the last segment.
    let text = std::fs::read_to_string(&sched).unwrap();
    let mut parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    let segs = parsed["segments"].as_array_mut().unwrap();
    segs.pop();
    std::fs::write(&sched, serde_json::to_string(&parsed).unwrap()).unwrap();
    let out = cli()
        .args(["check", trace.to_str().unwrap(), sched.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("INFEASIBLE"));
}

#[test]
fn usage_and_unknown_commands() {
    let out = run_ok(cli().arg("--help"));
    assert!(out.contains("USAGE"));
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn stats_and_svg_outputs() {
    let trace = tmp("stats.json");
    let svg = tmp("stats.svg");
    run_ok(cli().args([
        "generate",
        "--family",
        "poisson",
        "--n",
        "6",
        "--m",
        "2",
        "--horizon",
        "14",
        "--seed",
        "1",
        "-o",
        trace.to_str().unwrap(),
    ]));
    let out = run_ok(cli().args(["stats", trace.to_str().unwrap(), "--alpha", "2"]));
    assert!(out.contains("load factor"));
    assert!(out.contains("migrating jobs"));
    run_ok(cli().args([
        "solve",
        trace.to_str().unwrap(),
        "--svg",
        svg.to_str().unwrap(),
    ]));
    let content = std::fs::read_to_string(&svg).unwrap();
    assert!(content.starts_with("<svg"));
    assert!(content.contains("</svg>"));
}
