//! End-to-end tests of the `mpss-cli` binary: generate → solve → online →
//! bounds → check, driving the real executable.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpss-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mpss-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn mpss-cli");
    assert!(
        out.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn generate_solve_online_bounds_roundtrip() {
    let trace = tmp("roundtrip.json");
    let sched = tmp("roundtrip-schedule.json");

    let out = run_ok(cli().args([
        "generate",
        "--family",
        "uniform",
        "--n",
        "8",
        "--m",
        "2",
        "--horizon",
        "16",
        "--seed",
        "7",
        "-o",
        trace.to_str().unwrap(),
    ]));
    assert!(out.contains("8 jobs on 2 processors"));

    let out = run_ok(cli().args([
        "solve",
        trace.to_str().unwrap(),
        "--alpha",
        "2",
        "--gantt",
        "--save-schedule",
        sched.to_str().unwrap(),
    ]));
    assert!(out.contains("speed levels"));
    assert!(out.contains("energy (P = s^2)"));
    assert!(out.contains("P0")); // gantt rendered
    assert!(sched.exists());

    let out = run_ok(cli().args(["check", trace.to_str().unwrap(), sched.to_str().unwrap()]));
    assert!(out.contains("FEASIBLE"));

    for algo in ["oa", "avr"] {
        let out = run_ok(cli().args([
            "online",
            trace.to_str().unwrap(),
            "--algo",
            algo,
            "--alpha",
            "2",
        ]));
        assert!(out.contains("within bound  : yes"), "{algo}: {out}");
    }

    let out = run_ok(cli().args(["bounds", trace.to_str().unwrap(), "--alpha", "2"]));
    assert!(out.contains("minimum feasible peak speed"));
}

#[test]
fn bkp_requires_single_processor_traces() {
    let trace = tmp("bkp-m1.json");
    run_ok(cli().args([
        "generate",
        "--family",
        "bursty",
        "--n",
        "5",
        "--m",
        "1",
        "--horizon",
        "12",
        "--seed",
        "2",
        "-o",
        trace.to_str().unwrap(),
    ]));
    let out = run_ok(cli().args(["online", trace.to_str().unwrap(), "--algo", "bkp"]));
    assert!(out.contains("BKP"));

    // And an m = 2 trace is rejected with a clear error.
    let trace2 = tmp("bkp-m2.json");
    run_ok(cli().args([
        "generate",
        "--family",
        "bursty",
        "--n",
        "5",
        "--m",
        "2",
        "--horizon",
        "12",
        "--seed",
        "2",
        "-o",
        trace2.to_str().unwrap(),
    ]));
    let out = cli()
        .args(["online", trace2.to_str().unwrap(), "--algo", "bkp"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("single-processor"));
}

#[test]
fn corrupted_schedule_fails_check() {
    let trace = tmp("corrupt.json");
    let sched = tmp("corrupt-schedule.json");
    run_ok(cli().args([
        "generate",
        "--family",
        "uniform",
        "--n",
        "4",
        "--m",
        "1",
        "--horizon",
        "10",
        "--seed",
        "3",
        "-o",
        trace.to_str().unwrap(),
    ]));
    run_ok(cli().args([
        "solve",
        trace.to_str().unwrap(),
        "--save-schedule",
        sched.to_str().unwrap(),
    ]));
    // Corrupt: drop the last segment.
    let text = std::fs::read_to_string(&sched).unwrap();
    let mut parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    let segs = parsed["segments"].as_array_mut().unwrap();
    segs.pop();
    std::fs::write(&sched, serde_json::to_string(&parsed).unwrap()).unwrap();
    let out = cli()
        .args(["check", trace.to_str().unwrap(), sched.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("INFEASIBLE"));
}

#[test]
fn usage_and_unknown_commands() {
    let out = run_ok(cli().arg("--help"));
    assert!(out.contains("USAGE"));
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn stats_and_svg_outputs() {
    let trace = tmp("stats.json");
    let svg = tmp("stats.svg");
    run_ok(cli().args([
        "generate",
        "--family",
        "poisson",
        "--n",
        "6",
        "--m",
        "2",
        "--horizon",
        "14",
        "--seed",
        "1",
        "-o",
        trace.to_str().unwrap(),
    ]));
    let out = run_ok(cli().args(["stats", trace.to_str().unwrap(), "--alpha", "2"]));
    assert!(out.contains("load factor"));
    assert!(out.contains("migrating jobs"));
    run_ok(cli().args([
        "solve",
        trace.to_str().unwrap(),
        "--svg",
        svg.to_str().unwrap(),
    ]));
    let content = std::fs::read_to_string(&svg).unwrap();
    assert!(content.starts_with("<svg"));
    assert!(content.contains("</svg>"));
}
