//! Exact-arithmetic integration tests: the *entire* pipeline — offline
//! optimum, OA(m) with all its replans, AVR(m), YDS — run in `i128`
//! rationals on integer instances, validated at zero tolerance, and
//! compared bit-for-bit against theory.

use mpss::model::energy::schedule_energy_exact;
use mpss::model::validate::assert_feasible;
use mpss::numeric::rational::rat;
use mpss::numeric::Rational;
use mpss::offline::{optimal_schedule, yds_schedule};
use mpss::online::{avr_schedule, oa_schedule};
use mpss::prelude::{job, Family, Instance, WorkloadSpec};

fn exact(spec: WorkloadSpec) -> Instance<Rational> {
    spec.generate().to_rational()
}

#[test]
fn exact_offline_optimum_across_families() {
    for family in [
        Family::Uniform,
        Family::Bursty,
        Family::Laminar,
        Family::Periodic,
    ] {
        let ins = exact(WorkloadSpec {
            family,
            n: 8,
            m: 2,
            horizon: 16,
            seed: 44,
        });
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 0.0); // ZERO tolerance
                                                   // Total scheduled work is exactly the total volume.
        assert_eq!(res.schedule.total_work(), ins.total_volume(), "{family:?}");
        // Phase speeds are exactly strictly decreasing rationals.
        for w in res.phases.windows(2) {
            assert!(w[0].speed > w[1].speed, "{family:?}");
        }
    }
}

#[test]
fn exact_oa_run_with_replans() {
    let ins = exact(WorkloadSpec {
        family: Family::Bursty,
        n: 8,
        m: 2,
        horizon: 16,
        seed: 3,
    });
    let oa = oa_schedule(&ins).unwrap();
    assert_feasible(&ins, &oa.schedule, 0.0);
    assert!(
        oa.replans >= 2,
        "bursty family should force several replans"
    );
    // Exact competitive check against the exact optimum at α = 2:
    // E_OA / E_OPT ≤ α^α = 4, as exact rationals.
    let e_oa = schedule_energy_exact(&oa.schedule, 2);
    let e_opt = schedule_energy_exact(&optimal_schedule(&ins).unwrap().schedule, 2);
    assert!(e_oa >= e_opt, "online beat offline in exact arithmetic");
    assert!(
        e_oa <= Rational::from_int(4) * e_opt,
        "exact Theorem 2 violated: {e_oa} > 4·{e_opt}"
    );
}

#[test]
fn exact_avr_against_theorem3_bound() {
    let ins = exact(WorkloadSpec {
        family: Family::Uniform,
        n: 8,
        m: 2,
        horizon: 16,
        seed: 5,
    });
    let avr = avr_schedule(&ins);
    assert_feasible(&ins, &avr, 0.0);
    let e_avr = schedule_energy_exact(&avr, 2);
    let e_opt = schedule_energy_exact(&optimal_schedule(&ins).unwrap().schedule, 2);
    // (2α)^α/2 + 1 = 9 at α = 2, exactly.
    assert!(e_avr <= Rational::from_int(9) * e_opt);
    assert!(e_avr >= e_opt);
}

#[test]
fn exact_yds_equals_exact_flow_algorithm_at_m1() {
    let ins = exact(WorkloadSpec {
        family: Family::Agreeable,
        n: 7,
        m: 1,
        horizon: 14,
        seed: 9,
    });
    let flow = optimal_schedule(&ins).unwrap();
    let yds = yds_schedule(&ins);
    assert_feasible(&ins, &yds.schedule, 0.0);
    assert_eq!(
        schedule_energy_exact(&flow.schedule, 3),
        schedule_energy_exact(&yds.schedule, 3),
        "two independent algorithms must agree exactly"
    );
}

#[test]
fn known_instance_has_the_predicted_exact_energy() {
    // 3 identical jobs (0, 3, 3) on two processors: uniform speed 3/2 over
    // 6 processor-time units ⇒ E[s²] = (3/2)²·6 = 27/2 and
    // E[s³] = (27/8)·6 = 81/4, exactly.
    let ins: Instance<Rational> =
        Instance::new(2, vec![job(rat(0, 1), rat(3, 1), rat(3, 1)); 3]).unwrap();
    let res = optimal_schedule(&ins).unwrap();
    assert_eq!(schedule_energy_exact(&res.schedule, 2), rat(27, 2));
    assert_eq!(schedule_energy_exact(&res.schedule, 3), rat(81, 4));
}

#[test]
fn exact_fractional_coordinates_also_work() {
    // Rational (non-integer) inputs: thirds and halves.
    let ins: Instance<Rational> = Instance::new(
        2,
        vec![
            job(rat(0, 1), rat(1, 3), rat(1, 2)),
            job(rat(1, 6), rat(5, 6), rat(2, 3)),
            job(rat(0, 1), rat(5, 6), rat(1, 4)),
        ],
    )
    .unwrap();
    let res = optimal_schedule(&ins).unwrap();
    assert_feasible(&ins, &res.schedule, 0.0);
    assert_eq!(res.schedule.total_work(), rat(1, 2) + rat(2, 3) + rat(1, 4));
}
