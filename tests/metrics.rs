//! Integration tests for the live metrics layer: labeled session telemetry
//! round-trips through the hand-rolled `/metrics` endpoint and exposition
//! parser, the `MetricsCollector` bridge maps solver counters onto
//! manifest-listed Prometheus families, and the `report-diff --bench` /
//! `trace-check` / `scrape` CLI gates behave.
//!
//! Like `tests/trace_obs.rs`, everything here goes through `mpss_obs` and
//! `std` only — no serde, no HTTP crate.

use mpss::obs::names;
use mpss::obs::MetricsCollector;
use mpss::prelude::*;
use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpss-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mpss-metrics-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn session_metrics_round_trip_through_the_metrics_endpoint() {
    // Drive a live OA session publishing into a hub…
    let hub = MetricsHub::new();
    let mut session = OaSession::new(2, 0.0);
    session.attach_metrics(SessionMetrics::register(&hub, "oa", 2));
    session.arrive(4.0, 3.0).unwrap();
    session.arrive(2.0, 2.0).unwrap();
    session.advance_to(1.0).unwrap();
    session.arrive(3.0, 2.0).unwrap();

    // …serve it over the hand-rolled TCP responder and scrape it back.
    let mut server = MetricsServer::bind("127.0.0.1:0", &hub).unwrap();
    let text = http_get(server.addr(), "/metrics").unwrap();
    server.shutdown();

    // The exposition parses cleanly and the session series carry the
    // session's actual state, labels intact.
    let expo = parse_exposition(&text).unwrap();
    let arrivals = expo
        .family("mpss_session_arrivals_total")
        .and_then(|f| f.sample("mpss_session_arrivals_total", &[("algo", "oa")]))
        .expect("arrivals series");
    assert_eq!(arrivals.value, 3.0);
    let clock = expo
        .family("mpss_session_clock")
        .and_then(|f| f.sample("mpss_session_clock", &[("algo", "oa")]))
        .expect("clock series");
    assert_eq!(clock.value, 1.0);
    for proc in ["0", "1"] {
        expo.family("mpss_session_speed")
            .and_then(|f| f.sample("mpss_session_speed", &[("algo", "oa"), ("proc", proc)]))
            .unwrap_or_else(|| panic!("speed series for proc {proc}"));
    }
    let replans = expo
        .family("mpss_session_replans_total")
        .and_then(|f| f.sample("mpss_session_replans_total", &[("algo", "oa")]))
        .expect("replans series");
    assert_eq!(replans.value, session.replans() as f64);
    // Histogram families round-trip with their bucket invariants (the
    // parser checks le-monotonicity, +Inf == _count, and _sum presence).
    let count = expo
        .family("mpss_session_replan_seconds")
        .and_then(|f| f.sample("mpss_session_replan_seconds_count", &[("algo", "oa")]))
        .expect("replan latency histogram");
    assert_eq!(count.value, session.replans() as f64);
    // Every family the stack serves is listed in the names manifest.
    for family in &expo.families {
        assert!(
            names::known_metric(&family.name),
            "{} missing from mpss_obs::names::METRICS",
            family.name
        );
    }
}

#[test]
fn avr_session_publishes_under_its_own_algo_label() {
    let hub = MetricsHub::new();
    let mut session = AvrSession::new(2, 0.0);
    session.attach_metrics(SessionMetrics::register(&hub, "avr", 2));
    session.arrive(1.0, 4.0).unwrap();
    session.arrive(1.0, 1.0).unwrap();
    let expo = parse_exposition(&hub.render()).unwrap();
    let active = expo
        .family("mpss_session_active_jobs")
        .and_then(|f| f.sample("mpss_session_active_jobs", &[("algo", "avr")]))
        .expect("active series");
    assert_eq!(active.value, 2.0);
    // Peel the density-4 job; proc 0 runs it flat out.
    let speed0 = expo
        .family("mpss_session_speed")
        .and_then(|f| f.sample("mpss_session_speed", &[("algo", "avr"), ("proc", "0")]))
        .expect("speed series");
    assert_eq!(speed0.value, 4.0);
}

#[test]
fn metrics_collector_bridges_solver_counters_to_manifest_families() {
    let instance = Instance::new(
        2,
        vec![job(0.0, 1.0, 2.0), job(0.0, 2.0, 1.0), job(0.5, 3.0, 1.5)],
    )
    .unwrap();
    let hub = MetricsHub::new();
    let mut bridge = MetricsCollector::new(&hub);
    optimal_schedule_observed(&instance, &OfflineOptions::default(), &mut bridge).unwrap();

    let expo = parse_exposition(&hub.render()).unwrap();
    let phases = expo
        .family("mpss_offline_phases_total")
        .and_then(|f| f.sample("mpss_offline_phases_total", &[("track", "main")]))
        .expect("bridged offline.phases counter");
    assert!(phases.value >= 1.0);
    // Span durations land in the shared span histogram, labeled by span.
    let spans = expo
        .family("mpss_span_seconds")
        .expect("span seconds family");
    assert!(
        spans
            .samples
            .iter()
            .any(|s| s.label("span") == Some("offline.optimal_schedule")),
        "no offline.optimal_schedule span sample in {spans:?}"
    );
    for family in &expo.families {
        assert!(
            names::known_metric(&family.name),
            "{} missing from the manifest",
            family.name
        );
    }
}

#[test]
fn scrape_cli_validates_a_live_endpoint() {
    let hub = MetricsHub::new();
    let metrics = SessionMetrics::register(&hub, "oa", 1);
    metrics.on_arrival();
    metrics.on_replan(0.001);
    metrics.publish(2.0, 1, 0.5, &[1.25]);
    let mut server = MetricsServer::bind("127.0.0.1:0", &hub).unwrap();

    let saved = tmp("scraped.txt");
    let out = cli()
        .args([
            "scrape",
            &server.addr().to_string(),
            "--out",
            saved.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    server.shutdown();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parses cleanly"), "{stdout}");
    let text = std::fs::read_to_string(&saved).unwrap();
    assert!(text.contains("mpss_session_arrivals_total{algo=\"oa\"} 1"));
}

#[test]
fn watch_cli_runs_a_trace_and_writes_the_exposition() {
    let trace = tmp("watch-trace.json");
    let gen = cli()
        .args([
            "generate", "--family", "uniform", "--n", "6", "--m", "2", "--seed", "7", "-o",
        ])
        .arg(trace.to_str().unwrap())
        .output()
        .unwrap();
    assert!(gen.status.success(), "{gen:?}");

    let metrics_out = tmp("watch-metrics.txt");
    let out = cli()
        .args(["watch", trace.to_str().unwrap()])
        .args(["--algo", "oa", "--interval-ms", "0"])
        .args(["--metrics-out", metrics_out.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("final metrics snapshot"), "{stdout}");
    assert!(stdout.contains("mpss_session_replans_total"), "{stdout}");

    let expo = parse_exposition(&std::fs::read_to_string(&metrics_out).unwrap()).unwrap();
    let arrivals = expo
        .family("mpss_session_arrivals_total")
        .and_then(|f| f.sample("mpss_session_arrivals_total", &[("algo", "oa")]))
        .expect("arrivals series");
    assert_eq!(arrivals.value, 6.0);
}

#[test]
fn report_diff_bench_gates_newest_trajectory_entry() {
    let path = tmp("trajectory.json");
    std::fs::write(
        &path,
        r#"[
            {"name":"smoke","git_rev":"aaa1111","wall_ms":10.0,
             "counters":{"offline.phases":4,"offline.repair_rounds":6}},
            {"name":"smoke","git_rev":"bbb2222","wall_ms":11.0,
             "counters":{"offline.phases":4,"offline.repair_rounds":9}},
            {"name":"lonely","git_rev":"bbb2222","wall_ms":5.0,
             "counters":{"offline.phases":2}}
        ]"#,
    )
    .unwrap();

    // Ungated (--max-regress absent): report only, exit 0.
    let out = cli()
        .args(["report-diff", "--bench", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("bench smoke : aaa1111 -> bbb2222"),
        "{stdout}"
    );
    assert!(stdout.contains("lonely"), "{stdout}");
    assert!(stdout.contains("no baseline yet"), "{stdout}");

    // Gated: the repair-round growth trips the threshold.
    let out = cli()
        .args(["report-diff", "--bench", path.to_str().unwrap()])
        .args(["--max-regress", "5", "--only", "offline."])
        .output()
        .unwrap();
    assert!(!out.status.success(), "{out:?}");

    // Name-filtered to the single-entry snapshot: nothing to gate, exit 0.
    let out = cli()
        .args(["report-diff", "--bench", path.to_str().unwrap()])
        .args(["--name", "lonely", "--max-regress", "0"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // Unknown name: error.
    let out = cli()
        .args(["report-diff", "--bench", path.to_str().unwrap()])
        .args(["--name", "missing"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "{out:?}");
}

#[test]
fn repo_trajectory_passes_its_own_bench_gate() {
    // The committed BENCH_TRAJECTORY.json must stay consumable by the gate.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_TRAJECTORY.json");
    let out = cli()
        .args(["report-diff", "--bench", path.to_str().unwrap()])
        .args(["--max-regress", "0"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn trace_check_cli_fails_on_span_mismatches() {
    // A structurally valid trace whose run recorded one span mismatch: the
    // spans nest fine, but the obs.span_mismatch counter is non-zero.
    let path = tmp("mismatched.trace.json");
    std::fs::write(
        &path,
        r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":1.0,"name":"solve"},
            {"ph":"C","pid":1,"tid":0,"ts":2.0,"name":"obs.span_mismatch","args":{"value":1}},
            {"ph":"E","pid":1,"tid":0,"ts":3.0,"name":"solve"}
        ]}"#,
    )
    .unwrap();
    let out = cli()
        .args(["trace-check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "span mismatches must fail: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("span mismatch"), "{stderr}");
}
