//! Checkpoint/restore is *invisible*: killing a session (or the whole
//! daemon) at any point and restoring from its checkpoint must replay the
//! rest of the arrival stream to bit-identical state — same executed
//! segments, same clock, same speeds, same replan and max-flow counters.
//! No tolerance comparisons anywhere in this file: the checkpoint codec
//! rides the shortest-round-trip `f64` JSON, so equality is exact or it is
//! a bug.
//!
//! Three layers:
//!
//! * deterministic kill-after-every-step differentials for OA (both
//!   max-flow engines) and AVR, with and without history compaction;
//! * a daemon-level restart differential driving the full request surface;
//! * proptests over random streams × random kill interleavings.

use mpss::obs::json::Json;
use mpss::prelude::*;
use mpss::serve::protocol::{Algo, Request};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of an online arrival stream.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// Arrive with (deadline = now + window, volume).
    Arrive(f64, f64),
    /// Advance the clock by dt.
    Advance(f64),
}

/// A fractional random stream: awkward f64s on purpose, so any
/// text-round-trip rounding would show up as divergence.
fn stream(seed: u64, len: usize) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.6) {
                Event::Arrive(
                    0.3 + rng.gen_range(0.0..1.0) * 3.0,
                    0.1 + rng.gen_range(0.0..1.0),
                )
            } else {
                Event::Advance(rng.gen_range(0.0..1.0) * 0.7)
            }
        })
        .collect()
}

/// Freeze → render → parse → restore: the full disk round trip, minus the
/// disk.
fn kill_and_restore_oa(session: OaSession) -> OaSession {
    let frozen = session.checkpoint().to_json().render();
    drop(session);
    let parsed = Json::parse(&frozen).expect("checkpoint is valid JSON");
    OaSession::restore(OaCheckpoint::from_json(&parsed).expect("checkpoint decodes"))
        .expect("checkpoint restores")
}

fn kill_and_restore_avr(session: AvrSession) -> AvrSession {
    let frozen = session.checkpoint().to_json().render();
    drop(session);
    let parsed = Json::parse(&frozen).expect("checkpoint is valid JSON");
    AvrSession::restore(AvrCheckpoint::from_json(&parsed).expect("checkpoint decodes"))
        .expect("checkpoint restores")
}

/// Runs `events` through an OA session; `kill(i)` says whether to
/// kill/restore after step `i`. `compact` additionally drags a sliding
/// window behind the clock on every advance.
fn run_oa(
    events: &[Event],
    engine: FlowEngine,
    compact: Option<f64>,
    kill: impl Fn(usize) -> bool,
) -> OaSession {
    let mut session = OaSession::with_engine(2, 0.0, engine);
    for (i, event) in events.iter().enumerate() {
        match *event {
            Event::Arrive(window, volume) => {
                session
                    .arrive(session.now() + window, volume)
                    .expect("streams only produce valid jobs");
            }
            Event::Advance(dt) => {
                let to = session.now() + dt;
                session.advance_to(to).expect("time moves forward");
                if let Some(w) = compact {
                    session.compact_history(to - w);
                }
            }
        }
        if kill(i) {
            session = kill_and_restore_oa(session);
        }
    }
    session
}

fn run_avr(events: &[Event], compact: Option<f64>, kill: impl Fn(usize) -> bool) -> AvrSession {
    let mut session = AvrSession::new(2, 0.0);
    for (i, event) in events.iter().enumerate() {
        match *event {
            Event::Arrive(window, volume) => {
                session
                    .arrive(session.now() + window, volume)
                    .expect("streams only produce valid jobs");
            }
            Event::Advance(dt) => {
                let to = session.now() + dt;
                session.advance_to(to).expect("time moves forward");
                if let Some(w) = compact {
                    session.compact_history(to - w);
                }
            }
        }
        if kill(i) {
            session = kill_and_restore_avr(session);
        }
    }
    session
}

fn assert_oa_identical(a: &OaSession, b: &OaSession) {
    assert_eq!(a.now().to_bits(), b.now().to_bits(), "clock diverged");
    assert_eq!(
        a.executed().segments,
        b.executed().segments,
        "schedule diverged"
    );
    assert_eq!(a.replans(), b.replans(), "replan counter diverged");
    assert_eq!(
        a.flow_computations(),
        b.flow_computations(),
        "max-flow counter diverged"
    );
    assert_eq!(a.current_speeds(), b.current_speeds(), "speeds diverged");
    assert_eq!(a.compaction_watermark(), b.compaction_watermark());
    assert_eq!(a.compacted_segments(), b.compacted_segments());
    assert_eq!(a.compacted_work().to_bits(), b.compacted_work().to_bits());
    // And the checkpoints themselves are byte-identical, so a re-freeze of
    // the survivor equals a re-freeze of the restored twin.
    assert_eq!(
        a.checkpoint().to_json().render(),
        b.checkpoint().to_json().render()
    );
}

fn assert_avr_identical(a: &AvrSession, b: &AvrSession) {
    assert_eq!(a.now().to_bits(), b.now().to_bits(), "clock diverged");
    assert_eq!(
        a.executed().segments,
        b.executed().segments,
        "schedule diverged"
    );
    assert_eq!(a.current_speeds(), b.current_speeds(), "speeds diverged");
    assert_eq!(
        a.checkpoint().to_json().render(),
        b.checkpoint().to_json().render()
    );
}

#[test]
fn oa_kill_after_every_step_is_invisible_on_both_engines() {
    for engine in [FlowEngine::Dinic, FlowEngine::PushRelabel] {
        for seed in [1u64, 7, 42] {
            let events = stream(seed, 30);
            let straight = run_oa(&events, engine, None, |_| false);
            let battered = run_oa(&events, engine, None, |_| true);
            assert_oa_identical(&straight, &battered);
            assert!(straight.replans() > 0, "stream {seed} exercised nothing");
        }
    }
}

#[test]
fn oa_kill_restore_composes_with_compaction() {
    let events = stream(3, 40);
    for engine in [FlowEngine::Dinic, FlowEngine::PushRelabel] {
        let straight = run_oa(&events, engine, Some(1.5), |_| false);
        let battered = run_oa(&events, engine, Some(1.5), |i| i % 3 == 0);
        assert_oa_identical(&straight, &battered);
        assert!(
            straight.compacted_segments() > 0,
            "the window never compacted anything — the test is vacuous"
        );
    }
}

#[test]
fn avr_kill_after_every_step_is_invisible() {
    for seed in [2u64, 11, 99] {
        let events = stream(seed, 40);
        let straight = run_avr(&events, Some(1.0), |_| false);
        let battered = run_avr(&events, Some(1.0), |_| true);
        assert_avr_identical(&straight, &battered);
        assert!(!straight.executed().segments.is_empty());
    }
}

/// Daemon-level: the same request script through an uninterrupted daemon
/// and through one that is killed and restored from disk every few
/// requests; the final fleets must freeze to byte-identical checkpoints.
#[test]
fn daemon_restart_every_few_requests_is_invisible() {
    let scratch = std::env::temp_dir().join(format!("mpss-serve-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut script: Vec<Request> = vec![
        Request::Open {
            tenant: "din".into(),
            algo: Algo::Oa,
            m: 2,
            start: 0.0,
            engine: Some(FlowEngine::Dinic),
        },
        Request::Open {
            tenant: "rel".into(),
            algo: Algo::Oa,
            m: 3,
            start: 0.0,
            engine: Some(FlowEngine::PushRelabel),
        },
        Request::Open {
            tenant: "avr".into(),
            algo: Algo::Avr,
            m: 2,
            start: 0.0,
            engine: None,
        },
    ];
    let mut rng = StdRng::seed_from_u64(2026);
    let mut t = 0.0;
    for k in 0..40 {
        let tenant = ["din", "rel", "avr"][k % 3];
        script.push(Request::Arrive {
            tenant: tenant.into(),
            deadline: t + 0.5 + rng.gen_range(0.0..1.0) * 2.0,
            volume: 0.2 + rng.gen_range(0.0..1.0),
        });
        if k % 2 == 0 {
            t += rng.gen_range(0.0..1.0) * 0.4;
            script.push(Request::Advance {
                tenant: None,
                to: t,
            });
        }
    }

    let config = DaemonConfig {
        compact_window: Some(2.0),
        threads: Some(2),
        ..DaemonConfig::default()
    };
    let mut straight = Daemon::new(config.clone());
    let mut battered = Daemon::new(config.clone());
    let restart_dir = scratch.join("restarts");
    for (i, request) in script.iter().enumerate() {
        let a = straight.handle(request);
        let b = battered.handle(request);
        assert!(a.is_ok(), "straight {i}: {}", a.render_line());
        assert_eq!(
            a.render_line(),
            b.render_line(),
            "responses diverged at {i}"
        );
        if i % 5 == 4 {
            // Kill the battered daemon: freeze, drop, restore from disk.
            let dir = restart_dir.join(format!("at-{i}"));
            let freeze = battered.handle(&Request::Checkpoint {
                tenant: None,
                dir: dir.to_string_lossy().into_owned(),
            });
            assert!(freeze.is_ok(), "{}", freeze.render_line());
            battered = Daemon::new(config.clone());
            let revive = battered.handle(&Request::Restore {
                tenant: None,
                dir: dir.to_string_lossy().into_owned(),
            });
            assert!(revive.is_ok(), "{}", revive.render_line());
        }
    }

    // Final verdict: both fleets freeze to byte-identical files.
    let dir_a = scratch.join("final-straight");
    let dir_b = scratch.join("final-battered");
    for (daemon, dir) in [(&mut straight, &dir_a), (&mut battered, &dir_b)] {
        let r = daemon.handle(&Request::Checkpoint {
            tenant: None,
            dir: dir.to_string_lossy().into_owned(),
        });
        assert!(r.is_ok(), "{}", r.render_line());
    }
    for tenant in ["din", "rel", "avr"] {
        let file = format!("{tenant}.checkpoint.json");
        let a = std::fs::read(dir_a.join(&file)).expect("straight checkpoint");
        let b = std::fs::read(dir_b.join(&file)).expect("battered checkpoint");
        assert_eq!(
            a, b,
            "tenant {tenant}: restart history leaked into the checkpoint"
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of kill/restore points in any OA arrival stream is
    /// invisible in the executed schedule and every counter.
    #[test]
    fn oa_any_kill_interleaving_is_invisible(
        seed in 0u64..10_000,
        kill_mask in 0u64..u64::MAX,
        len in 10usize..25,
    ) {
        let events = stream(seed, len);
        let straight = run_oa(&events, FlowEngine::Dinic, None, |_| false);
        let battered = run_oa(&events, FlowEngine::Dinic, None, |i| kill_mask >> (i % 64) & 1 == 1);
        assert_oa_identical(&straight, &battered);
    }

    /// Same property for AVR, with a compaction window dragging along.
    #[test]
    fn avr_any_kill_interleaving_is_invisible(
        seed in 0u64..10_000,
        kill_mask in 0u64..u64::MAX,
        len in 10usize..30,
    ) {
        let events = stream(seed, len);
        let straight = run_avr(&events, Some(0.8), |_| false);
        let battered = run_avr(&events, Some(0.8), |i| kill_mask >> (i % 64) & 1 == 1);
        assert_avr_identical(&straight, &battered);
    }
}
