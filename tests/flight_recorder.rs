//! Property tests of the flight recorder's accounting contract under
//! random interleavings of `record`, `dump_json`, and `compact_before_seq`
//! (the three operations the daemon performs on a ring), plus the ring's
//! capacity invariants:
//!
//! * the ring never retains more than `capacity` events;
//! * retained events are strictly increasing in `seq` and monotone in
//!   `ts_ns`;
//! * `recorded_total == len + dropped_total` at every step — every event
//!   ever recorded is either retained or accounted as dropped, exactly
//!   once, whether it left by capacity eviction or by compaction.

use mpss::obs::json::Json;
use mpss::obs::{FlightEventKind, FlightRecorder};
use proptest::prelude::*;

/// One step of the daemon's usage pattern, generated randomly.
#[derive(Clone, Debug)]
enum Op {
    Record(u8),
    /// Compact behind `seq_bound = recorded_total * fraction/255` — spans
    /// "compact nothing" through "compact past the end".
    Compact(u8),
    Dump,
}

/// Records outweigh compactions and dumps 5:1:1, mirroring the daemon
/// (every request records; bundles are rare).
fn op() -> impl Strategy<Value = Op> {
    (0u8..7, 0u8..=255u8).prop_map(|(sel, payload)| match sel {
        0..=4 => Op::Record(payload),
        5 => Op::Compact(payload),
        _ => Op::Dump,
    })
}

fn event(variant: u8) -> FlightEventKind {
    match variant % 3 {
        0 => FlightEventKind::request("arrive", !variant.is_multiple_of(5), None),
        // The +0.125 keeps the latency non-integral, so the JSON dump
        // round-trips as a float rather than collapsing to an integer.
        1 => FlightEventKind::replan(
            f64::from(variant) * 0.25 + 0.125,
            u64::from(variant),
            7,
            "dinic",
        ),
        _ => FlightEventKind::error("planning", "injected"),
    }
}

/// The invariants every interleaving must preserve, checked after each op.
fn check(flight: &FlightRecorder) {
    assert!(
        flight.len() <= flight.capacity(),
        "ring holds {} events over capacity {}",
        flight.len(),
        flight.capacity()
    );
    assert_eq!(
        flight.recorded_total(),
        flight.len() as u64 + flight.dropped_total(),
        "recorded_total must equal len + dropped_total"
    );
    let events: Vec<_> = flight.events().collect();
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq must strictly increase");
        assert!(pair[0].ts_ns <= pair[1].ts_ns, "ts_ns must be monotone");
    }
}

proptest! {
    #[test]
    fn random_interleavings_preserve_the_accounting(
        capacity in 1usize..40,
        ops in proptest::collection::vec(op(), 1..200),
    ) {
        let mut flight = FlightRecorder::new(capacity);
        let mut recorded = 0u64;
        for step in &ops {
            match step {
                Op::Record(variant) => {
                    let seq = flight.record(event(*variant));
                    prop_assert_eq!(seq, recorded, "seqs are dense and never reused");
                    recorded += 1;
                }
                Op::Compact(fraction) => {
                    let bound = recorded * u64::from(*fraction) / 255;
                    let dropped_before = flight.dropped_total();
                    let surviving = flight.events().filter(|e| e.seq >= bound).count();
                    flight.compact_before_seq(bound);
                    prop_assert_eq!(flight.len(), surviving);
                    prop_assert!(flight.dropped_total() >= dropped_before);
                }
                Op::Dump => {
                    let dump = flight.dump_json();
                    let Some(Json::Arr(events)) = dump.get("events") else {
                        panic!("dump has no events array");
                    };
                    prop_assert_eq!(events.len(), flight.len());
                    prop_assert_eq!(dump.get("recorded_total"), Some(&Json::UInt(recorded)));
                    // The dump round-trips through the JSON parser.
                    prop_assert_eq!(&Json::parse(&dump.render()).unwrap(), &dump);
                }
            }
            check(&flight);
            prop_assert_eq!(flight.recorded_total(), recorded);
        }
    }

    /// Exactness of `dropped_total`: with only records, drops are exactly
    /// the overflow past capacity — no event is ever double-counted.
    #[test]
    fn dropped_total_is_exact_under_pure_recording(
        capacity in 1usize..20,
        n in 0usize..100,
    ) {
        let mut flight = FlightRecorder::new(capacity);
        for i in 0..n {
            flight.record(event(i as u8));
        }
        prop_assert_eq!(flight.len(), n.min(capacity));
        prop_assert_eq!(flight.dropped_total(), n.saturating_sub(capacity) as u64);
        prop_assert_eq!(flight.recorded_total(), n as u64);
    }
}
