//! Integration tests for the streaming trace layer: raced solves produce
//! multi-track Chrome Trace Event JSON, batch runs get one track per
//! worker, the counter-name manifest covers everything the solvers emit,
//! and the `report-diff` / `trace-check` CLI gates behave.
//!
//! Everything here goes through `mpss_obs::json` — no serde — so the tests
//! run identically with or without the real serde stack.

use mpss::obs::json::Json;
use mpss::obs::{names, TraceEventKind};
use mpss::prelude::*;
use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpss-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mpss-trace-obs-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A workload with several phases and repair rounds, so raced solves go
/// through many max-flow probes.
fn racing_instance() -> Instance<f64> {
    Instance::new(
        3,
        vec![
            job(0.0, 1.0, 4.0),
            job(0.0, 1.0, 4.0),
            job(0.0, 2.0, 1.0),
            job(0.5, 3.0, 2.0),
            job(1.0, 4.0, 3.0),
            job(2.0, 6.0, 1.5),
            job(2.5, 5.0, 2.5),
        ],
    )
    .unwrap()
}

#[test]
fn raced_solve_traces_contender_tracks_with_cancel_instants() {
    let instance = racing_instance();
    let opts = OfflineOptions {
        race_engines: true,
        ..Default::default()
    };
    let mut trace = TraceCollector::new("main");
    let result = optimal_schedule_observed(&instance, &opts, &mut trace).unwrap();
    assert!(result.flow_computations > 1, "want a real race workload");

    // One track per execution lane: the caller plus both race contenders.
    let tracks = trace.track_names();
    assert!(tracks.len() >= 3, "tracks: {tracks:?}");
    assert_eq!(tracks[0], "main");
    let dinic = tracks.iter().position(|t| t == "race.dinic").unwrap() as u32;
    let pr = tracks.iter().position(|t| t == "race.pr").unwrap() as u32;

    // Every probe cancels exactly one loser, on that loser's own track.
    let cancelled: Vec<u32> = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceEventKind::Instant("race.cancelled"))
        .map(|e| e.track)
        .collect();
    assert_eq!(cancelled.len(), result.flow_computations);
    assert!(cancelled.iter().all(|t| *t == dinic || *t == pr));
    // Both contenders ran probes (each records a race.probe span per flow).
    for track in [dinic, pr] {
        let probes = trace
            .events()
            .iter()
            .filter(|e| e.track == track && e.kind == TraceEventKind::Begin("race.probe"))
            .count();
        assert_eq!(probes, result.flow_computations, "track {track}");
    }

    // The Chrome export of that trace passes the validator: well-nested
    // begin/end and monotone timestamps per track.
    let check = mpss::obs::validate_chrome_trace(&trace.chrome_trace().render()).unwrap();
    assert_eq!(check.tracks, tracks.len());
    assert_eq!(check.track_names, tracks);
    assert!(
        check.max_depth >= 2,
        "phase spans nest under the solve span"
    );
}

#[test]
fn batch_trace_forks_one_track_per_worker() {
    let batch: Vec<Instance<f64>> = (0..4).map(|_| racing_instance()).collect();
    let mut trace = TraceCollector::new("main");
    let outputs = solve_many_observed(
        &batch,
        &OfflineOptions::default(),
        &ThreadPool::new(2),
        &mut trace,
    );
    assert!(outputs.iter().all(|o| o.result.is_ok()));
    assert_eq!(trace.track_names(), ["main", "worker-0", "worker-1"]);
    // All four instances ran inside a batch.solve span on some worker track.
    let solves = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceEventKind::Begin("batch.solve"))
        .count();
    assert_eq!(solves, batch.len());
    let check = mpss::obs::validate_chrome_trace(&trace.chrome_trace().render()).unwrap();
    // All three tracks exist; a worker that never won the work-stealing race
    // (possible on a single-core machine) carries no events, and the
    // validator only counts populated tracks.
    assert!((2..=3).contains(&check.tracks), "{check:?}");
}

#[test]
fn batch_collector_totals_equal_the_merged_per_instance_reports() {
    let batch: Vec<Instance<f64>> = (0..3).map(|_| racing_instance()).collect();
    let mut obs = RecordingCollector::new();
    let outputs = solve_many_observed(
        &batch,
        &OfflineOptions::default(),
        &ThreadPool::new(2),
        &mut obs,
    );
    // Every counter a per-instance report recorded also reached the batch
    // collector through the worker tracks, and the totals line up exactly.
    for out in &outputs {
        assert!(out.report.counter("offline.phases") > 0);
    }
    let mut keys: Vec<&str> = outputs
        .iter()
        .flat_map(|o| o.report.counters().map(|(k, _)| k))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    for key in keys {
        let sum: u64 = outputs.iter().map(|o| o.report.counter(key)).sum();
        assert_eq!(obs.counter(key), sum, "{key}");
    }
    // Histograms merge the same way: per-key sample counts add up.
    let mut hist_keys: Vec<&str> = outputs
        .iter()
        .flat_map(|o| o.report.histograms().map(|(k, _)| k))
        .collect();
    hist_keys.sort_unstable();
    hist_keys.dedup();
    for key in hist_keys {
        let sum: u64 = outputs
            .iter()
            .filter_map(|o| o.report.histogram(key))
            .map(|h| h.count())
            .sum();
        assert_eq!(obs.histogram(key).unwrap().count(), sum, "{key}");
    }
}

#[test]
fn manifest_covers_everything_the_stack_emits() {
    let instance = racing_instance();
    let mut rec = RecordingCollector::new();

    // Offline: raced + warm solve.
    let opts = OfflineOptions {
        race_engines: true,
        ..Default::default()
    };
    optimal_schedule_observed(&instance, &opts, &mut rec).unwrap();
    // Offline: cold solve exercises the cold counters.
    let cold = OfflineOptions {
        warm_start: false,
        ..Default::default()
    };
    optimal_schedule_observed(&instance, &cold, &mut rec).unwrap();
    // Online: OA with trajectory + competitive report, parallel AVR.
    let oa = oa_schedule_observed(&instance, &mut rec).unwrap();
    let p = Polynomial::new(3.0);
    record_energy_trajectory(&oa.schedule, &p, &mut rec);
    competitive_report_observed(&instance, &oa.schedule, &p, p.oa_bound(), &mut rec).unwrap();
    avr_schedule_parallel_observed(&instance, &ThreadPool::new(2), &mut rec);
    // Batch over the pool.
    let batch = vec![instance.clone(), instance.clone()];
    solve_many_observed(&batch, &opts, &ThreadPool::new(2), &mut rec);
    rec.close_open_spans();

    let unknown = names::unknown_keys(
        rec.counters().map(|(k, _)| k),
        rec.histograms().map(|(k, _)| k),
    );
    assert!(unknown.is_empty(), "manifest is missing: {unknown:?}");
}

#[test]
fn design_md_embeds_the_manifest_table() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("DESIGN.md");
    let text = std::fs::read_to_string(&path).expect("DESIGN.md at the repo root");
    let table = names::markdown_table();
    assert!(
        text.contains(&table),
        "DESIGN.md's observability table is out of sync with \
         mpss_obs::names::markdown_table(); paste the generated table in"
    );
}

#[test]
fn report_diff_cli_gates_regressions_and_passes_self_diffs() {
    let a = tmp("diff-a.json");
    let b = tmp("diff-b.json");
    std::fs::write(
        &a,
        r#"{"counters":{"offline.phases":4,"offline.repair_rounds":6},"histograms":{},"spans":[]}"#,
    )
    .unwrap();
    std::fs::write(
        &b,
        r#"{"counters":{"offline.phases":4,"offline.repair_rounds":9},"histograms":{},"spans":[]}"#,
    )
    .unwrap();

    // Self-diff: identical reports, exit 0.
    let out = cli()
        .args(["report-diff", a.to_str().unwrap(), a.to_str().unwrap()])
        .args(["--max-regress", "0"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("unchanged"));

    // A gated counter grew past the threshold: non-zero exit.
    let out = cli()
        .args(["report-diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .args(["--max-regress", "5", "--only", "offline."])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSION"));

    // The same delta outside the gated prefix only reports, exit 0.
    let out = cli()
        .args(["report-diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .args(["--max-regress", "5", "--only", "par."])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn trace_check_cli_validates_an_exported_trace() {
    let instance = racing_instance();
    let opts = OfflineOptions {
        race_engines: true,
        ..Default::default()
    };
    let mut trace = TraceCollector::new("main");
    optimal_schedule_observed(&instance, &opts, &mut trace).unwrap();
    let path = tmp("raced.trace.json");
    trace.write_chrome_trace(&path).unwrap();

    let out = cli()
        .args(["trace-check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid Chrome Trace Event JSON"));
    assert!(stdout.contains("race.dinic"));

    // Corrupt the nesting: trace-check must reject it.
    let bad = tmp("bad.trace.json");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&bad, text.replacen("\"ph\":\"E\"", "\"ph\":\"B\"", 1)).unwrap();
    let out = cli()
        .args(["trace-check", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn collapsed_stacks_cover_every_track_with_positive_weights() {
    let instance = racing_instance();
    let opts = OfflineOptions {
        race_engines: true,
        ..Default::default()
    };
    let mut trace = TraceCollector::new("main");
    optimal_schedule_observed(&instance, &opts, &mut trace).unwrap();
    let folded = trace.collapsed_stacks();
    for prefix in ["main;", "race.dinic;", "race.pr;"] {
        assert!(
            folded.lines().any(|l| l.starts_with(prefix)),
            "no stacks for {prefix}: {folded}"
        );
    }
    for line in folded.lines() {
        let (_, weight) = line.rsplit_once(' ').unwrap();
        assert!(weight.parse::<u64>().is_ok(), "bad weight in {line}");
    }
    // Trace totals are self times: the folded weights of a track sum to at
    // most the span of the track's timeline.
    assert!(Json::parse(&trace.chrome_trace().render()).is_ok());
}
