//! Moderate-scale stress tests: larger instances than the unit tests use,
//! exercising allocation paths, wrap-around packing across many intervals,
//! and numeric stability of long accumulations. Sized to stay inside a few
//! seconds in debug builds.

use mpss::offline::certificate::verify_certificate;
use mpss::prelude::*;

#[test]
fn sixty_jobs_eight_processors_across_families() {
    for family in [Family::Uniform, Family::Bursty, Family::TightLoad] {
        let instance = WorkloadSpec {
            family,
            n: 60,
            m: 8,
            horizon: 120,
            seed: 99,
        }
        .generate();
        let res = optimal_schedule(&instance).unwrap();
        assert_feasible(&instance, &res.schedule, 1e-8);
        verify_certificate(&instance, &res, 1e-7)
            .unwrap_or_else(|e| panic!("{family:?}: certificate rejected: {e}"));
        // Flow-computation budget (Theorem 1's polynomial bound).
        assert!(res.flow_computations <= 60 * 61 / 2 + 60);
        // Energy sandwich at scale.
        let p = Polynomial::cube();
        let opt = schedule_energy(&res.schedule, &p);
        let lb = per_job_lower_bound(&instance, &p);
        assert!(lb <= opt * (1.0 + 1e-6), "{family:?}: LB {lb} > OPT {opt}");
    }
}

#[test]
fn long_horizon_many_intervals() {
    // 40 short jobs scattered over a long horizon: many intervals, sparse
    // activity — stresses the interval bookkeeping rather than the flows.
    let instance = WorkloadSpec {
        family: Family::Poisson,
        n: 40,
        m: 2,
        horizon: 400,
        seed: 5,
    }
    .generate();
    let res = optimal_schedule(&instance).unwrap();
    assert_feasible(&instance, &res.schedule, 1e-8);
    assert!(res.intervals.len() >= 20, "expected a long event partition");
}

#[test]
fn online_algorithms_at_scale() {
    let instance = WorkloadSpec {
        family: Family::Bursty,
        n: 50,
        m: 4,
        horizon: 100,
        seed: 17,
    }
    .generate();
    let p = Polynomial::new(2.0);
    let e_opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);

    let oa = oa_schedule(&instance).unwrap();
    assert_feasible(&instance, &oa.schedule, 1e-6);
    let r_oa = schedule_energy(&oa.schedule, &p) / e_opt;
    assert!(
        (1.0 - 1e-6..=p.oa_bound()).contains(&r_oa),
        "OA ratio {r_oa}"
    );

    let avr = avr_schedule(&instance);
    assert_feasible(&instance, &avr, 1e-8);
    let r_avr = schedule_energy(&avr, &p) / e_opt;
    assert!(
        (1.0 - 1e-6..=p.avr_bound()).contains(&r_avr),
        "AVR ratio {r_avr}"
    );
}

#[test]
fn exact_arithmetic_at_scale_does_not_overflow() {
    // 30 integer jobs through the full rational pipeline: denominators stay
    // bounded by interval-length lcms; this guards against accidental
    // denominator blow-ups reintroduced by refactors.
    let instance = WorkloadSpec {
        family: Family::Uniform,
        n: 30,
        m: 3,
        horizon: 60,
        seed: 23,
    }
    .generate()
    .to_rational();
    let res = optimal_schedule(&instance).unwrap();
    assert_feasible(&instance, &res.schedule, 0.0);
    let energy = schedule_energy_exact(&res.schedule, 2);
    assert!(energy.is_positive());
    // Denominator sanity: printable without astronomical digits.
    assert!(
        energy.denom() < i128::MAX / 1_000_000,
        "denominator blow-up: {energy}"
    );
}
