//! Fuzz-style property tests of the whole offline stack on *fractional*
//! (non-integer) random instances — the regime where float tolerance
//! actually gets exercised — plus validator failure-injection: random
//! corruptions of correct schedules must be caught.

use mpss::model::validate::ScheduleViolation;
use mpss::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random instance with fractional coordinates (not exactly representable
/// on any grid).
fn fractional_instance(n: usize, m: usize, seed: u64) -> Instance<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = (0..n)
        .map(|_| {
            let r: f64 = rng.gen_range(0.0..10.0);
            let span: f64 = rng.gen_range(0.3..7.0);
            let w: f64 = rng.gen_range(0.2..9.0);
            job(r, r + span, w)
        })
        .collect();
    Instance::new(m, jobs).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimal schedule stays feasible and sandwiched on fractional
    /// instances.
    #[test]
    fn fractional_instances_stay_feasible_and_sandwiched(
        seed in 0u64..100_000, n in 2usize..10, m in 1usize..4
    ) {
        let ins = fractional_instance(n, m, seed);
        let res = optimal_schedule(&ins).unwrap();
        prop_assert!(validate_schedule(&ins, &res.schedule, 1e-7).is_ok());
        let p = Polynomial::new(2.0);
        let opt = schedule_energy(&res.schedule, &p);
        let lb = per_job_lower_bound(&ins, &p);
        prop_assert!(lb <= opt * (1.0 + 1e-6) + 1e-9, "LB {lb} > OPT {opt}");
        let nm = non_migratory_schedule(&ins, 2.0, AssignPolicy::LeastLoaded);
        let ub = schedule_energy(&nm.schedule, &p);
        prop_assert!(opt <= ub * (1.0 + 1e-6) + 1e-9, "OPT {opt} > UB {ub}");
    }

    /// Scaling all volumes by c scales optimal energy by c^α
    /// (homogeneity of P(s) = s^α — a strong functional invariant).
    #[test]
    fn energy_is_alpha_homogeneous_in_volume(
        seed in 0u64..100_000, n in 2usize..7, scale in 1.5f64..4.0
    ) {
        let ins = fractional_instance(n, 2, seed);
        let mut scaled = ins.clone();
        for j in &mut scaled.jobs {
            j.volume *= scale;
        }
        let p = Polynomial::new(2.0);
        let e1 = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
        let e2 = schedule_energy(&optimal_schedule(&scaled).unwrap().schedule, &p);
        prop_assert!(
            (e2 - scale.powi(2) * e1).abs() <= 1e-6 * e2.max(1.0),
            "homogeneity broken: {e2} vs {}", scale.powi(2) * e1
        );
    }

    /// Dilating time by c scales optimal energy by c^{1−α}.
    #[test]
    fn energy_scales_correctly_under_time_dilation(
        seed in 0u64..100_000, n in 2usize..7, c in 1.5f64..3.0
    ) {
        let ins = fractional_instance(n, 2, seed);
        let mut dilated = ins.clone();
        for j in &mut dilated.jobs {
            j.release *= c;
            j.deadline *= c;
        }
        let p = Polynomial::new(3.0);
        let e1 = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
        let e2 = schedule_energy(&optimal_schedule(&dilated).unwrap().schedule, &p);
        prop_assert!(
            (e2 - c.powi(-2) * e1).abs() <= 1e-6 * e1.max(1.0),
            "dilation scaling broken: {e2} vs {}", c.powi(-2) * e1
        );
    }

    /// Failure injection: corrupting a correct schedule (drop / stretch /
    /// de-speed / double-book a segment) must be caught by the validator.
    #[test]
    fn validator_catches_random_corruption(
        seed in 0u64..100_000, n in 3usize..8, kind in 0usize..4
    ) {
        let ins = fractional_instance(n, 2, seed);
        let mut sched = optimal_schedule(&ins).unwrap().schedule;
        prop_assume!(!sched.segments.is_empty());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let idx = rng.gen_range(0..sched.segments.len());
        match kind {
            0 => {
                // Drop a segment: some job loses work.
                sched.segments.remove(idx);
            }
            1 => {
                // Halve a segment's speed: work goes missing.
                sched.segments[idx].speed *= 0.5;
            }
            2 => {
                // Shift a segment before every release.
                let dur = sched.segments[idx].duration();
                sched.segments[idx].start = -5.0;
                sched.segments[idx].end = -5.0 + dur;
            }
            _ => {
                // Duplicate a segment onto the same processor/time: overlap
                // AND over-completion.
                let dup = sched.segments[idx];
                sched.segments.push(dup);
            }
        }
        prop_assert!(
            validate_schedule(&ins, &sched, 1e-7).is_err(),
            "corruption kind {kind} slipped through"
        );
    }
}

#[test]
fn validator_reports_specific_violation_kinds() {
    let ins = Instance::new(1, vec![job(0.0, 2.0, 2.0)]).unwrap();
    let mut sched = optimal_schedule(&ins).unwrap().schedule;
    sched.segments[0].speed *= 0.5;
    let errs = validate_schedule(&ins, &sched, 1e-9).unwrap_err();
    assert!(errs
        .iter()
        .any(|v| matches!(v, ScheduleViolation::WrongVolume { job: 0, .. })));
}

#[test]
fn degenerate_shapes_are_handled() {
    // One very long job among many short ones; equal jobs; micro-windows.
    let cases = vec![
        vec![
            job(0.0, 100.0, 1.0),
            job(49.9, 50.1, 5.0),
            job(50.0, 50.2, 5.0),
        ],
        vec![job(0.0, 1.0, 1.0); 12],
        vec![job(0.0, 1e-3, 1e-3), job(0.0, 1e3, 1e3)],
    ];
    for jobs in cases {
        for m in [1usize, 3] {
            let ins = Instance::new(m, jobs.clone()).unwrap();
            let res = optimal_schedule(&ins).unwrap();
            assert!(validate_schedule(&ins, &res.schedule, 1e-6).is_ok());
        }
    }
}

mod monotonicity {
    use super::*;
    use mpss::workloads::{scale_slack, split_jobs};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Extending any single deadline never raises the optimum.
        #[test]
        fn deadline_extension_is_monotone(seed in 0u64..50_000, n in 2usize..7, extra in 0.5f64..5.0) {
            let ins = fractional_instance(n, 2, seed);
            let p = Polynomial::new(2.0);
            let e0 = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            for k in 0..ins.n() {
                let mut relaxed = ins.clone();
                relaxed.jobs[k].deadline += extra;
                let e = schedule_energy(&optimal_schedule(&relaxed).unwrap().schedule, &p);
                prop_assert!(e <= e0 * (1.0 + 1e-6) + 1e-9,
                    "extending job {k}'s deadline raised OPT {e0} -> {e}");
            }
        }

        /// Shrinking any volume never raises the optimum.
        #[test]
        fn volume_reduction_is_monotone(seed in 0u64..50_000, n in 2usize..7) {
            let ins = fractional_instance(n, 2, seed);
            let p = Polynomial::new(2.5);
            let e0 = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            let mut lighter = ins.clone();
            for j in &mut lighter.jobs {
                j.volume *= 0.7;
            }
            let e = schedule_energy(&optimal_schedule(&lighter).unwrap().schedule, &p);
            prop_assert!(e <= e0 * (1.0 + 1e-6), "lighter load raised OPT {e0} -> {e}");
        }

        /// Splitting jobs and relaxing slack never raise the optimum
        /// (perturbation utilities agree with theory).
        #[test]
        fn perturbations_respect_monotonicity(seed in 0u64..50_000, n in 2usize..6) {
            let ins = fractional_instance(n, 2, seed);
            let p = Polynomial::new(2.0);
            let e0 = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            let e_split = schedule_energy(
                &optimal_schedule(&split_jobs(&ins, 2)).unwrap().schedule, &p);
            prop_assert!(e_split <= e0 * (1.0 + 1e-6));
            let e_relax = schedule_energy(
                &optimal_schedule(&scale_slack(&ins, 1.25)).unwrap().schedule, &p);
            prop_assert!(e_relax <= e0 * (1.0 + 1e-6));
        }
    }
}
