//! Fuzz-style property tests of the whole offline stack on *fractional*
//! (non-integer) random instances — the regime where float tolerance
//! actually gets exercised — plus validator failure-injection: random
//! corruptions of correct schedules must be caught.
//!
//! Failing instances are persisted as JSON fixtures under `tests/fixtures/`
//! (same format as the workload traces, written and parsed by hand so the
//! harness has no serializer dependency) and replayed by
//! [`replay_persisted_fixtures`]; interesting historical failures get
//! promoted to named `fixture_*` regression tests.

use mpss::model::validate::ScheduleViolation;
use mpss::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod fixtures {
    use mpss::prelude::*;
    use std::fmt::Write as _;
    use std::path::{Path, PathBuf};

    pub fn dir() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
    }

    /// Serializes `ins` in the workload-trace JSON format
    /// (`{"m": .., "jobs": [{"release", "deadline", "volume"}, ..]}`) —
    /// hand-rolled so fixture IO works without any serializer.
    pub fn write_fixture(tag: &str, ins: &Instance<f64>) -> PathBuf {
        let mut text = format!("{{\n  \"m\": {},\n  \"jobs\": [\n", ins.m);
        for (i, j) in ins.jobs.iter().enumerate() {
            let comma = if i + 1 == ins.jobs.len() { "" } else { "," };
            let _ = writeln!(
                text,
                "    {{\"release\": {:?}, \"deadline\": {:?}, \"volume\": {:?}}}{comma}",
                j.release, j.deadline, j.volume
            );
        }
        text.push_str("  ]\n}\n");
        let path = dir().join(format!("{tag}.json"));
        std::fs::create_dir_all(dir()).expect("create fixture dir");
        std::fs::write(&path, text).expect("write fixture");
        path
    }

    /// Minimal parser for the same format. Tolerates whitespace and key
    /// order within a job object; anything else is a panic — fixtures are
    /// test inputs, not user data.
    pub fn read_fixture(path: &Path) -> Instance<f64> {
        let text = std::fs::read_to_string(path).expect("read fixture");
        let m = number_after(&text, "\"m\"") as usize;
        let mut jobs = Vec::new();
        // Each job object lives between braces after the "jobs" key.
        let body = text.split_once("\"jobs\"").expect("jobs key").1;
        for obj in body.split('{').skip(1) {
            let obj = obj.split('}').next().expect("closing brace");
            jobs.push(job(
                number_after(obj, "\"release\""),
                number_after(obj, "\"deadline\""),
                number_after(obj, "\"volume\""),
            ));
        }
        Instance::new(m, jobs).expect("fixture instance is valid")
    }

    fn number_after(text: &str, key: &str) -> f64 {
        let tail = text.split_once(key).expect("key present").1;
        let tail = tail.split_once(':').expect("colon").1;
        let tail = tail.trim_start();
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(tail.len());
        tail[..end].parse().expect("numeric value")
    }
}

/// The invariant bundle every fixture (and every fuzz case) must satisfy:
/// warm and cold solvers agree bit-for-bit on the phase structure and the
/// repair trace, the schedule is feasible, and the energy is sandwiched
/// between the per-job lower bound and the non-migratory upper bound.
fn check_offline_properties(ins: &Instance<f64>) {
    let run = |warm_start: bool| {
        let opts = OfflineOptions {
            record_trace: true,
            warm_start,
            ..Default::default()
        };
        mpss::offline::optimal_schedule_with(ins, &opts).unwrap()
    };
    let cold = run(false);
    let warm = run(true);
    assert!(validate_schedule(ins, &cold.schedule, 1e-7).is_ok());
    assert!(validate_schedule(ins, &warm.schedule, 1e-7).is_ok());
    assert_eq!(warm.phases.len(), cold.phases.len(), "phase count");
    for (pa, pb) in warm.phases.iter().zip(&cold.phases) {
        assert_eq!(pa.speed.to_bits(), pb.speed.to_bits(), "phase speed");
        assert_eq!(pa.jobs, pb.jobs, "phase jobs");
        assert_eq!(pa.procs, pb.procs, "phase reservations");
        assert_eq!(pa.rounds, pb.rounds, "phase rounds");
    }
    assert_eq!(
        warm.trace
            .iter()
            .map(|r| (r.phase, r.candidate_size, r.removed))
            .collect::<Vec<_>>(),
        cold.trace
            .iter()
            .map(|r| (r.phase, r.candidate_size, r.removed))
            .collect::<Vec<_>>(),
        "repair traces"
    );
    let p = Polynomial::new(2.0);
    let opt = schedule_energy(&warm.schedule, &p);
    let lb = per_job_lower_bound(ins, &p);
    assert!(lb <= opt * (1.0 + 1e-6) + 1e-9, "LB {lb} > OPT {opt}");
    let nm = non_migratory_schedule(ins, 2.0, AssignPolicy::LeastLoaded);
    let ub = schedule_energy(&nm.schedule, &p);
    assert!(opt <= ub * (1.0 + 1e-6) + 1e-9, "OPT {opt} > UB {ub}");
}

/// Runs the invariant bundle; on failure persists the instance as a JSON
/// fixture (so the exact case replays forever via
/// [`replay_persisted_fixtures`]) before re-raising the panic.
fn check_with_persistence(tag: &str, ins: &Instance<f64>) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        check_offline_properties(ins)
    }));
    if let Err(panic) = outcome {
        let path = fixtures::write_fixture(tag, ins);
        eprintln!(
            "fuzz case failed — instance persisted to {} (replayed by replay_persisted_fixtures)",
            path.display()
        );
        std::panic::resume_unwind(panic);
    }
}

/// Replays every fixture under `tests/fixtures/` — the committed regression
/// corpus plus anything a failing fuzz run persisted locally.
#[test]
fn replay_persisted_fixtures() {
    let mut names: Vec<PathBuf> = std::fs::read_dir(fixtures::dir())
        .expect("tests/fixtures exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    assert!(
        !names.is_empty(),
        "the committed fixture corpus must not be empty"
    );
    for path in names {
        let ins = fixtures::read_fixture(&path);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_offline_properties(&ins)
        }));
        if let Err(panic) = outcome {
            eprintln!("fixture {} failed", path.display());
            std::panic::resume_unwind(panic);
        }
    }
}

use std::path::PathBuf;

/// Historical repair-cascade shape: nested windows force phase 1 through
/// multiple Lemma 4 removals, exercising the warm drain/retarget path.
#[test]
fn fixture_repair_cascade() {
    let ins = fixtures::read_fixture(&fixtures::dir().join("repair_cascade.json"));
    check_offline_properties(&ins);
    // The shape exists to drive repeated removals: the two dense jobs pin a
    // fast first phase and the wide jobs must be relaxed out one by one.
    let opts = OfflineOptions {
        record_trace: true,
        ..Default::default()
    };
    let res = mpss::offline::optimal_schedule_with(&ins, &opts).unwrap();
    let removals = res.trace.iter().filter(|r| r.removed.is_some()).count();
    assert!(removals >= 2, "expected a removal cascade, saw {removals}");
}

/// Fractional capacities with a tight window pair — the shape that first
/// exposed conservation dust in the warm cancellation walks.
#[test]
fn fixture_fractional_tight_pair() {
    let ins = fixtures::read_fixture(&fixtures::dir().join("fractional_tight_pair.json"));
    check_offline_properties(&ins);
}

/// Solves `ins` with the push-relabel engine and returns the heuristic
/// counters `(global_relabels, current_arc_resets, gap_events)`.
fn pr_heuristic_counters(ins: &Instance<f64>) -> (u64, u64, u64) {
    let opts = OfflineOptions {
        engine: FlowEngine::PushRelabel,
        warm_start: false,
        ..Default::default()
    };
    let mut obs = mpss::obs::RecordingCollector::default();
    mpss::offline::optimal_schedule_observed(ins, &opts, &mut obs).unwrap();
    (
        obs.counter("maxflow.pr.global_relabels"),
        obs.counter("maxflow.pr.current_arc_resets"),
        obs.counter("maxflow.pr.gap_events"),
    )
}

/// 20 tightly overlapping fractional jobs on 2 processors: push-relabel's
/// current-arc pointers sweep each node's CSR slice to exhaustion thousands
/// of times, so every relabel-driven reset re-walks a wrapped pointer back
/// to `first_arc[u]`. Guards the pointer-reset bookkeeping (a stale pointer
/// after relabel is the classic current-arc soundness bug).
#[test]
fn fixture_csr_current_arc_wraparound() {
    let ins = fixtures::read_fixture(&fixtures::dir().join("csr_current_arc_wraparound.json"));
    check_offline_properties(&ins);
    let (globals, resets, _) = pr_heuristic_counters(&ins);
    assert!(
        globals >= 10,
        "expected periodic global relabels, saw {globals}"
    );
    assert!(
        resets >= 500,
        "expected heavy current-arc resets, saw {resets}"
    );
}

/// Companion shape where the gap heuristic keeps firing *after* periodic
/// global relabels have rebuilt exact distance labels — the interleaving
/// that once risked lifting a node below its BFS height. Guards the
/// `max(old, bfs)` lift rule and the gap/global ordering.
#[test]
fn fixture_csr_gap_after_global_relabel() {
    let ins = fixtures::read_fixture(&fixtures::dir().join("csr_gap_after_global_relabel.json"));
    check_offline_properties(&ins);
    let (globals, _, gaps) = pr_heuristic_counters(&ins);
    assert!(
        globals >= 10,
        "expected periodic global relabels, saw {globals}"
    );
    assert!(gaps >= 50, "expected gap-heuristic events, saw {gaps}");
}

/// Random instance with fractional coordinates (not exactly representable
/// on any grid).
fn fractional_instance(n: usize, m: usize, seed: u64) -> Instance<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = (0..n)
        .map(|_| {
            let r: f64 = rng.gen_range(0.0..10.0);
            let span: f64 = rng.gen_range(0.3..7.0);
            let w: f64 = rng.gen_range(0.2..9.0);
            job(r, r + span, w)
        })
        .collect();
    Instance::new(m, jobs).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimal schedule stays feasible and sandwiched on fractional
    /// instances, with warm ≡ cold bit-identity. Failing cases are
    /// persisted as JSON fixtures under `tests/fixtures/` and replayed
    /// forever by `replay_persisted_fixtures`.
    #[test]
    fn fractional_instances_stay_feasible_and_sandwiched(
        seed in 0u64..100_000, n in 2usize..10, m in 1usize..4
    ) {
        let ins = fractional_instance(n, m, seed);
        check_with_persistence(&format!("fuzz_sandwich_s{seed}_n{n}_m{m}"), &ins);
    }

    /// Scaling all volumes by c scales optimal energy by c^α
    /// (homogeneity of P(s) = s^α — a strong functional invariant).
    #[test]
    fn energy_is_alpha_homogeneous_in_volume(
        seed in 0u64..100_000, n in 2usize..7, scale in 1.5f64..4.0
    ) {
        let ins = fractional_instance(n, 2, seed);
        let mut scaled = ins.clone();
        for j in &mut scaled.jobs {
            j.volume *= scale;
        }
        let p = Polynomial::new(2.0);
        let e1 = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
        let e2 = schedule_energy(&optimal_schedule(&scaled).unwrap().schedule, &p);
        prop_assert!(
            (e2 - scale.powi(2) * e1).abs() <= 1e-6 * e2.max(1.0),
            "homogeneity broken: {e2} vs {}", scale.powi(2) * e1
        );
    }

    /// Dilating time by c scales optimal energy by c^{1−α}.
    #[test]
    fn energy_scales_correctly_under_time_dilation(
        seed in 0u64..100_000, n in 2usize..7, c in 1.5f64..3.0
    ) {
        let ins = fractional_instance(n, 2, seed);
        let mut dilated = ins.clone();
        for j in &mut dilated.jobs {
            j.release *= c;
            j.deadline *= c;
        }
        let p = Polynomial::new(3.0);
        let e1 = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
        let e2 = schedule_energy(&optimal_schedule(&dilated).unwrap().schedule, &p);
        prop_assert!(
            (e2 - c.powi(-2) * e1).abs() <= 1e-6 * e1.max(1.0),
            "dilation scaling broken: {e2} vs {}", c.powi(-2) * e1
        );
    }

    /// Failure injection: corrupting a correct schedule (drop / stretch /
    /// de-speed / double-book a segment) must be caught by the validator.
    #[test]
    fn validator_catches_random_corruption(
        seed in 0u64..100_000, n in 3usize..8, kind in 0usize..4
    ) {
        let ins = fractional_instance(n, 2, seed);
        let mut sched = optimal_schedule(&ins).unwrap().schedule;
        prop_assume!(!sched.segments.is_empty());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let idx = rng.gen_range(0..sched.segments.len());
        match kind {
            0 => {
                // Drop a segment: some job loses work.
                sched.segments.remove(idx);
            }
            1 => {
                // Halve a segment's speed: work goes missing.
                sched.segments[idx].speed *= 0.5;
            }
            2 => {
                // Shift a segment before every release.
                let dur = sched.segments[idx].duration();
                sched.segments[idx].start = -5.0;
                sched.segments[idx].end = -5.0 + dur;
            }
            _ => {
                // Duplicate a segment onto the same processor/time: overlap
                // AND over-completion.
                let dup = sched.segments[idx];
                sched.segments.push(dup);
            }
        }
        prop_assert!(
            validate_schedule(&ins, &sched, 1e-7).is_err(),
            "corruption kind {kind} slipped through"
        );
    }
}

#[test]
fn validator_reports_specific_violation_kinds() {
    let ins = Instance::new(1, vec![job(0.0, 2.0, 2.0)]).unwrap();
    let mut sched = optimal_schedule(&ins).unwrap().schedule;
    sched.segments[0].speed *= 0.5;
    let errs = validate_schedule(&ins, &sched, 1e-9).unwrap_err();
    assert!(errs
        .iter()
        .any(|v| matches!(v, ScheduleViolation::WrongVolume { job: 0, .. })));
}

#[test]
fn degenerate_shapes_are_handled() {
    // One very long job among many short ones; equal jobs; micro-windows.
    let cases = vec![
        vec![
            job(0.0, 100.0, 1.0),
            job(49.9, 50.1, 5.0),
            job(50.0, 50.2, 5.0),
        ],
        vec![job(0.0, 1.0, 1.0); 12],
        vec![job(0.0, 1e-3, 1e-3), job(0.0, 1e3, 1e3)],
    ];
    for jobs in cases {
        for m in [1usize, 3] {
            let ins = Instance::new(m, jobs.clone()).unwrap();
            let res = optimal_schedule(&ins).unwrap();
            assert!(validate_schedule(&ins, &res.schedule, 1e-6).is_ok());
        }
    }
}

mod monotonicity {
    use super::*;
    use mpss::workloads::{scale_slack, split_jobs};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Extending any single deadline never raises the optimum.
        #[test]
        fn deadline_extension_is_monotone(seed in 0u64..50_000, n in 2usize..7, extra in 0.5f64..5.0) {
            let ins = fractional_instance(n, 2, seed);
            let p = Polynomial::new(2.0);
            let e0 = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            for k in 0..ins.n() {
                let mut relaxed = ins.clone();
                relaxed.jobs[k].deadline += extra;
                let e = schedule_energy(&optimal_schedule(&relaxed).unwrap().schedule, &p);
                prop_assert!(e <= e0 * (1.0 + 1e-6) + 1e-9,
                    "extending job {k}'s deadline raised OPT {e0} -> {e}");
            }
        }

        /// Shrinking any volume never raises the optimum.
        #[test]
        fn volume_reduction_is_monotone(seed in 0u64..50_000, n in 2usize..7) {
            let ins = fractional_instance(n, 2, seed);
            let p = Polynomial::new(2.5);
            let e0 = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            let mut lighter = ins.clone();
            for j in &mut lighter.jobs {
                j.volume *= 0.7;
            }
            let e = schedule_energy(&optimal_schedule(&lighter).unwrap().schedule, &p);
            prop_assert!(e <= e0 * (1.0 + 1e-6), "lighter load raised OPT {e0} -> {e}");
        }

        /// Splitting jobs and relaxing slack never raise the optimum
        /// (perturbation utilities agree with theory).
        #[test]
        fn perturbations_respect_monotonicity(seed in 0u64..50_000, n in 2usize..6) {
            let ins = fractional_instance(n, 2, seed);
            let p = Polynomial::new(2.0);
            let e0 = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            let e_split = schedule_energy(
                &optimal_schedule(&split_jobs(&ins, 2)).unwrap().schedule, &p);
            prop_assert!(e_split <= e0 * (1.0 + 1e-6));
            let e_relax = schedule_energy(
                &optimal_schedule(&scale_slack(&ins, 1.25)).unwrap().schedule, &p);
            prop_assert!(e_relax <= e0 * (1.0 + 1e-6));
        }
    }
}
