//! # mpss — Multi-Processor Speed Scaling with migration
//!
//! A from-scratch Rust implementation of
//! *"On multi-processor speed scaling with migration"* by Susanne Albers,
//! Antonios Antoniadis and Gero Greiner (SPAA 2011; JCSS 2015):
//!
//! * the **combinatorial optimal offline algorithm** (max-flow based,
//!   polynomial time, optimal for every convex non-decreasing power
//!   function) — [`offline::optimal_schedule`];
//! * the online algorithms **OA(m)** (`α^α`-competitive) and **AVR(m)**
//!   (`(2α)^α/2 + 1`-competitive) — [`online::oa_schedule`],
//!   [`online::avr_schedule`];
//! * every substrate they rest on, built in-workspace: max-flow engines,
//!   a simplex LP solver (for the Bingham–Greenstreet baseline), exact
//!   rational arithmetic, YDS, workload generators, and an independent
//!   schedule validator.
//!
//! ## Quickstart
//!
//! ```
//! use mpss::prelude::*;
//!
//! // Three jobs on two processors: (release, deadline, volume).
//! let instance = Instance::new(2, vec![
//!     job(0.0, 2.0, 3.0),
//!     job(0.0, 4.0, 2.0),
//!     job(1.0, 3.0, 2.0),
//! ]).unwrap();
//!
//! // Optimal offline schedule (optimal for EVERY convex power function).
//! let opt = optimal_schedule(&instance).unwrap();
//! assert_feasible(&instance, &opt.schedule, 1e-9);
//!
//! // Energy under the cube-root rule P(s) = s³.
//! let energy = schedule_energy(&opt.schedule, &Polynomial::cube());
//! assert!(energy > 0.0);
//!
//! // Online algorithms never beat OPT and respect their theorems' bounds.
//! let oa = oa_schedule(&instance).unwrap();
//! let e_oa = schedule_energy(&oa.schedule, &Polynomial::cube());
//! assert!(e_oa >= energy - 1e-9);
//! assert!(e_oa <= Polynomial::cube().oa_bound() * energy + 1e-9);
//! ```

pub use mpss_core as model;
pub use mpss_lp as lp;
pub use mpss_maxflow as maxflow;
pub use mpss_numeric as numeric;
pub use mpss_obs as obs;
pub use mpss_offline as offline;
pub use mpss_online as online;
pub use mpss_par as par;
pub use mpss_serve as serve;
pub use mpss_sim as sim;
pub use mpss_workloads as workloads;

pub mod batch;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use mpss_core::energy::{schedule_energy, schedule_energy_exact};
    pub use mpss_core::job::job;
    pub use mpss_core::power::{AffinePolynomial, Exponential, PiecewiseLinear, Polynomial};
    pub use mpss_core::validate::{assert_feasible, validate_schedule};
    pub use mpss_core::{Instance, Intervals, Job, JobId, PowerFunction, Schedule, Segment};
    pub use mpss_numeric::{FlowNum, Rational};
    pub use mpss_obs::{
        diff_bench_trajectory, diff_reports, http_get, parse_exposition, validate_chrome_trace,
        BenchGate, Collector, DiffOptions, MetricsCollector, MetricsHub, MetricsServer,
        NoopCollector, RecordingCollector, Tee, TraceCollector, TrackedCollector,
    };
    pub use mpss_offline::canonical::canonicalize;
    pub use mpss_offline::certificate::verify_certificate;
    pub use mpss_offline::discrete::discretize_speeds;
    pub use mpss_offline::lower_bounds::{best_lower_bound, per_job_lower_bound};
    pub use mpss_offline::lp_baseline::lp_baseline;
    pub use mpss_offline::non_migratory::{non_migratory_schedule, AssignPolicy};
    pub use mpss_offline::speed_bound::{feasible_at_cap, minimum_peak_speed};
    pub use mpss_offline::{
        optimal_schedule, optimal_schedule_observed, optimal_schedule_seeded,
        optimal_schedule_with, yds_schedule, FlowEngine, OfflineOptions, SeedPlan,
    };
    pub use mpss_online::{
        audit_oa_potential, avr_proof_terms, avr_schedule, avr_schedule_observed,
        avr_schedule_parallel, avr_schedule_parallel_observed, bkp_schedule, competitive_report,
        competitive_report_observed, oa_schedule, oa_schedule_observed, oa_schedule_observed_with,
        oa_schedule_with_options, record_energy_trajectory, AvrCheckpoint, AvrSession,
        OaCheckpoint, OaOptions, OaSession, SessionError, SessionMetrics,
    };
    pub use mpss_par::ThreadPool;
    pub use mpss_serve::{serve_tcp, Daemon, DaemonConfig};
    pub use mpss_workloads::{instance_stats, Family, WorkloadSpec};

    pub use crate::batch::{solve_many, solve_many_observed, BatchOutput};
}
