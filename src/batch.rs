//! Batched multi-instance solving over the shared worker pool.
//!
//! Experiment sweeps and the `mpss-cli solve-batch` command solve many
//! *independent* instances — different seeds, different workload families,
//! different traces in a directory. The instances share nothing, so the
//! natural unit of parallelism is the whole solve: [`solve_many`] shards the
//! batch across an [`mpss_par::ThreadPool`] and returns results in input
//! order, each with its own per-instance run report.
//!
//! Determinism: each instance is solved by exactly one worker with its own
//! engines and its own [`RecordingCollector`], and the pool's ordered join
//! puts outputs back in submission order — the batch output is byte-for-byte
//! the concatenation of `threads = 1` solo runs, whatever the thread count.

use mpss_core::{Instance, ModelError};
use mpss_numeric::FlowNum;
use mpss_obs::{Collector, NoopCollector, RecordingCollector, Tee, TrackedCollector};
use mpss_offline::{optimal_schedule_observed, OfflineOptions, OptimalResult};
use mpss_par::ThreadPool;

/// One instance's slice of a [`solve_many`] batch.
pub struct BatchOutput<T: FlowNum> {
    /// The solve outcome (independent per instance; one instance erroring
    /// does not poison the batch).
    pub result: Result<OptimalResult<T>, ModelError>,
    /// This instance's run report: phase spans, repair-round counters,
    /// max-flow work counters — everything a solo `--report` run records.
    pub report: RecordingCollector,
}

/// Solves every instance of `batch` on the pool, returning outputs in input
/// order. See [`solve_many_observed`] for the instrumented variant.
pub fn solve_many<T: FlowNum>(
    batch: &[Instance<T>],
    opts: &OfflineOptions,
    pool: &ThreadPool,
) -> Vec<BatchOutput<T>> {
    solve_many_observed(batch, opts, pool, &mut NoopCollector)
}

/// [`solve_many`] with a batch-level [`Collector`].
///
/// The caller's collector receives the pool-level counters `par.tasks`
/// (instances dispatched) and `par.pool.threads`, plus — through forked
/// per-worker tracks (`worker-0`, `worker-1`, …) adopted back in worker
/// order — every solver event, each instance wrapped in a `batch.solve`
/// span. The per-instance solver counters *also* land in each
/// [`BatchOutput::report`] (the solver reports through a [`Tee`]), which
/// keeps those reports exactly equal to what a solo observed run of that
/// instance would record: the `batch.solve` span and worker tracks exist
/// only on the batch-level collector.
pub fn solve_many_observed<T: FlowNum, C: TrackedCollector>(
    batch: &[Instance<T>],
    opts: &OfflineOptions,
    pool: &ThreadPool,
    obs: &mut C,
) -> Vec<BatchOutput<T>> {
    obs.count("par.tasks", batch.len() as u64);
    obs.count("par.pool.threads", pool.threads() as u64);
    let items: Vec<&Instance<T>> = batch.iter().collect();
    pool.scope_map_tracked(items, obs, |_, instance, track| {
        track.span_start("batch.solve");
        let mut report = RecordingCollector::new();
        let result = {
            let mut tee = Tee(&mut *track, &mut report);
            optimal_schedule_observed(instance, opts, &mut tee)
        };
        report.close_open_spans();
        track.span_end("batch.solve");
        // Shard progress lives on the batch-level collector only (a live
        // metrics bridge sees it as per-worker completion), keeping each
        // per-instance report equal to a solo observed run.
        track.count("batch.solved", 1);
        BatchOutput { result, report }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::energy::schedule_energy;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;

    fn batch_of(n: usize) -> Vec<Instance<f64>> {
        (0..n)
            .map(|k| {
                let stretch = 1.0 + k as f64;
                Instance::new(
                    2,
                    vec![
                        job(0.0, 1.0, 2.0 * stretch),
                        job(0.0, 2.0 * stretch, 1.0),
                        job(0.5, 1.5 + stretch, 1.5),
                    ],
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_matches_solo_solves_in_order() {
        let batch = batch_of(6);
        let opts = OfflineOptions::default();
        let outputs = solve_many(&batch, &opts, &ThreadPool::new(4));
        assert_eq!(outputs.len(), batch.len());
        let p = Polynomial::new(3.0);
        for (instance, out) in batch.iter().zip(&outputs) {
            let solo = mpss_offline::optimal_schedule_with(instance, &opts).unwrap();
            let batched = out.result.as_ref().unwrap();
            assert_eq!(solo.schedule.segments, batched.schedule.segments);
            assert_eq!(solo.flow_computations, batched.flow_computations);
            let e_solo = schedule_energy(&solo.schedule, &p);
            let e_batch = schedule_energy(&batched.schedule, &p);
            assert_eq!(e_solo.to_bits(), e_batch.to_bits());
        }
    }

    #[test]
    fn per_instance_reports_match_solo_observed_runs() {
        let batch = batch_of(4);
        let opts = OfflineOptions::default();
        let mut obs = RecordingCollector::new();
        let outputs = solve_many_observed(&batch, &opts, &ThreadPool::new(2), &mut obs);
        assert_eq!(obs.counter("par.tasks"), batch.len() as u64);
        assert_eq!(obs.counter("par.pool.threads"), 2);
        for (instance, out) in batch.iter().zip(&outputs) {
            let mut solo = RecordingCollector::new();
            let res = optimal_schedule_observed(instance, &opts, &mut solo).unwrap();
            assert_eq!(
                out.report.counter("offline.phases"),
                res.phases.len() as u64
            );
            for key in [
                "offline.repair_rounds",
                "offline.maxflow.invocations",
                "maxflow.dinic.bfs_phases",
                "maxflow.dinic.augmenting_paths",
            ] {
                assert_eq!(out.report.counter(key), solo.counter(key), "{key}");
            }
        }
    }

    #[test]
    fn single_threaded_batch_is_the_sequential_loop() {
        let batch = batch_of(3);
        let opts = OfflineOptions {
            race_engines: true,
            ..Default::default()
        };
        let seq = solve_many(&batch, &opts, &ThreadPool::new(1));
        let par = solve_many(&batch, &opts, &ThreadPool::new(8));
        for (a, b) in seq.iter().zip(&par) {
            let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(ra.phases.len(), rb.phases.len());
            for (pa, pb) in ra.phases.iter().zip(&rb.phases) {
                assert_eq!(pa.speed.to_bits(), pb.speed.to_bits());
                assert_eq!(pa.jobs, pb.jobs);
            }
        }
    }
}
