//! `mpss-cli` — command-line interface to the mpss library.
//!
//! ```text
//! mpss-cli generate --family uniform --n 20 --m 4 [--horizon 48] [--seed 1] -o trace.json
//! mpss-cli solve trace.json [--alpha 3] [--gantt] [--cold-flow] [--race] [--save-schedule out.json] [--report out.json]
//! mpss-cli solve-batch --dir traces/ [--alpha 3] [--threads N] [--race] [--report-dir reports/]
//! mpss-cli online trace.json --algo oa|avr|bkp [--alpha 3] [--cold-flow] [--threads N] [--report out.json]
//! mpss-cli bounds trace.json [--alpha 3]
//! mpss-cli check trace.json schedule.json
//! mpss-cli report-diff a.report.json b.report.json [--max-regress 5] [--only offline.] [--gate-wall]
//! mpss-cli report-diff --bench BENCH_TRAJECTORY.json [--name snapshot] [--max-regress 5]
//! mpss-cli trace-check run.trace.json
//! mpss-cli watch trace.json [--algo oa|avr] [--loops N] [--listen 127.0.0.1:9184] [--hold-ms MS]
//! mpss-cli serve [--listen 127.0.0.1:9200] [--metrics 127.0.0.1:9184] [--compact-window W] [--threads N]
//!                [--log-level info] [--flight-capacity N] [--postmortem-dir DIR] [--slow-replan-ms MS]
//! mpss-cli scrape 127.0.0.1:9184 [--out metrics.txt]
//! mpss-cli postmortem bundle-dir/ [--baseline metrics.prom]
//! ```
//!
//! `--report <path>` attaches a [`RecordingCollector`] to the run and writes
//! the JSON run report (per-phase spans, max-flow work counters, latency
//! histograms) it collected. `--trace <path>` additionally streams every
//! span/instant/counter event into a [`TraceCollector`] and exports Chrome
//! Trace Event JSON — load it in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing` to see per-worker and per-race-contender tracks on one
//! time axis. `--flame <path>` writes the same trace as collapsed stacks
//! (`track;outer;inner weight_ns` lines) for flamegraph tooling.
//! `--cold-flow` disables the warm-start max-flow
//! path (and OA replan reseeding), running every repair round from a freshly
//! built network — the differential oracle the warm path is validated
//! against.
//!
//! `report-diff` compares two run reports counter by counter and exits
//! non-zero when any gated counter increased by more than `--max-regress`
//! percent — the CI drift gate; with `--bench` it instead reads a cumulative
//! `BENCH_TRAJECTORY.json` (written by the experiment binaries) and gates
//! each snapshot's newest entry against its predecessor. `trace-check`
//! validates a Chrome Trace Event file (well-nested spans and monotone
//! timestamps per track) and fails when the trace recorded any
//! `obs.span_mismatch` events.
//!
//! `watch` drives an online session ([`OaSession`] / [`AvrSession`]) over a
//! trace while publishing live labeled metrics to an in-process
//! [`MetricsHub`] — arrivals, replans, queued volume, per-processor speeds,
//! replan-latency quantiles. By default it prints a snapshot table; with
//! `--listen addr:port` it also serves Prometheus text exposition on
//! `GET /metrics` (hand-rolled, `std::net` only) so `curl` or `scrape` can
//! watch the run from outside. `scrape` fetches one exposition from such an
//! endpoint, validates it with the workspace parser, and checks every
//! `mpss_`-prefixed family against the `mpss_obs::names` manifest.
//!
//! `postmortem` opens a bundle directory written by the `serve` daemon's
//! black box (see [`mpss_serve::postmortem`]): it renders the incident
//! manifest and the tenant's flight-recorder timeline, optionally diffs the
//! bundled metrics snapshot against a `--baseline` exposition, and replays
//! the embedded checkpoint through a fresh session to prove the tenant's
//! plan is reproduced bit-identically.
//!
//! Parallelism: `--threads N` sizes the worker pool explicitly; without it
//! the `MPSS_THREADS` environment variable, then the machine's available
//! parallelism, decide. The effective count is recorded in every `--report`
//! as the `par.pool.threads` counter. `--race` runs both max-flow engines on
//! each probe and keeps the first finisher (identical phases and energy —
//! see the "Parallel execution" section of DESIGN.md).

use mpss::prelude::*;
use mpss::sim::{fleet_stats, job_stats, render_gantt, render_svg, SvgOptions};
use mpss::workloads::instance_stats;
use mpss::workloads::{read_trace, write_trace};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("solve-batch") => cmd_solve_batch(&args[1..]),
        Some("online") => cmd_online(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("report-diff") => cmd_report_diff(&args[1..]),
        Some("trace-check") => cmd_trace_check(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("scrape") => cmd_scrape(&args[1..]),
        Some("postmortem") => cmd_postmortem(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "mpss-cli — multi-processor speed scaling with migration (SPAA 2011)\n\n\
         USAGE:\n\
         \u{20}  mpss-cli generate --family <name> --n <jobs> --m <procs> [--horizon H] [--seed S] -o <trace.json>\n\
         \u{20}  mpss-cli solve <trace.json> [--alpha A] [--gantt] [--cold-flow] [--race] [--save-schedule <out.json>] [--report <out.json>] [--trace <out.trace.json>] [--flame <out.folded>]\n\
         \u{20}  mpss-cli solve-batch --dir <traces/> [--alpha A] [--threads N] [--race] [--cold-flow] [--report-dir <reports/>] [--trace <out.trace.json>]\n\
         \u{20}  mpss-cli online <trace.json> --algo <oa|avr|bkp> [--alpha A] [--cold-flow] [--threads N] [--report <out.json>] [--trace <out.trace.json>] [--flame <out.folded>]\n\
         \u{20}  mpss-cli bounds <trace.json> [--alpha A]\n\
         \u{20}  mpss-cli stats <trace.json> [--alpha A]\n\
         \u{20}  mpss-cli check <trace.json> <schedule.json>\n\
         \u{20}  mpss-cli report-diff <a.report.json> <b.report.json> [--max-regress PCT] [--only PREFIX] [--gate-wall]\n\
         \u{20}  mpss-cli report-diff --bench <BENCH_TRAJECTORY.json> [--name SNAPSHOT] [--max-regress PCT] [--gate-wall]\n\
         \u{20}  mpss-cli trace-check <run.trace.json>\n\
         \u{20}  mpss-cli watch <trace.json> [--algo oa|avr] [--alpha A] [--loops N] [--pace-ms MS] [--interval-ms MS] [--listen HOST:PORT] [--hold-ms MS] [--metrics-out <file>]\n\
         \u{20}  mpss-cli serve [--listen HOST:PORT] [--metrics HOST:PORT] [--compact-window W] [--threads N] [--log-level L] [--flight-capacity N] [--postmortem-dir DIR] [--slow-replan-ms MS]\n\
         \u{20}  mpss-cli scrape <HOST:PORT> [--out <file>]\n\
         \u{20}  mpss-cli postmortem <bundle-dir> [--baseline <metrics.prom>]\n\n\
         families: uniform bursty laminar agreeable tight-load avr-adversarial poisson heavy-tail periodic"
    );
}

/// Tiny flag parser: `--key value` pairs plus positional arguments.
struct Args<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, &'a str)>,
    switches: Vec<&'a str>,
}

fn parse<'a>(args: &'a [String], switch_names: &[&str]) -> Args<'a> {
    let mut out = Args {
        positional: Vec::new(),
        flags: Vec::new(),
        switches: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            if switch_names.contains(&name) {
                out.switches.push(name);
                i += 1;
            } else if i + 1 < args.len() {
                out.flags.push((name, args[i + 1].as_str()));
                i += 2;
            } else {
                out.positional.push(a);
                i += 1;
            }
        } else if a == "-o" && i + 1 < args.len() {
            out.flags.push(("o", args[i + 1].as_str()));
            i += 2;
        } else {
            out.positional.push(a);
            i += 1;
        }
    }
    out
}

impl Args<'_> {
    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }
    fn alpha(&self) -> Result<f64, String> {
        let a: f64 = self
            .flag("alpha")
            .unwrap_or("3")
            .parse()
            .map_err(|_| "alpha must be a number".to_string())?;
        if a <= 1.0 {
            return Err("alpha must be > 1".into());
        }
        Ok(a)
    }
    /// `--threads N` as an explicit pool-size override; `None` defers to the
    /// `MPSS_THREADS` environment variable / available parallelism.
    fn threads(&self) -> Result<Option<usize>, String> {
        self.flag("threads")
            .map(|v| v.parse().map_err(|_| "bad --threads".to_string()))
            .transpose()
    }
}

fn family_by_name(name: &str) -> Result<Family, String> {
    Family::ALL
        .into_iter()
        .find(|f| f.name() == name)
        .ok_or_else(|| format!("unknown family `{name}`"))
}

fn load(path: &str) -> Result<Instance<f64>, String> {
    read_trace(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))
}

/// Writes the `--trace` (Chrome Trace Event JSON) and `--flame` (collapsed
/// stacks) exports of a finished [`TraceCollector`], if requested.
fn write_trace_outputs(a: &Args<'_>, trace: &TraceCollector) -> Result<(), String> {
    if let Some(out) = a.flag("trace") {
        trace
            .write_chrome_trace(Path::new(out))
            .map_err(|e| e.to_string())?;
        println!("  trace saved to {out} (open in Perfetto / chrome://tracing)");
    }
    if let Some(out) = a.flag("flame") {
        std::fs::write(out, trace.collapsed_stacks()).map_err(|e| e.to_string())?;
        println!("  collapsed stacks saved to {out}");
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let a = parse(args, &[]);
    let family = family_by_name(a.flag("family").ok_or("--family required")?)?;
    let n: usize = a
        .flag("n")
        .ok_or("--n required")?
        .parse()
        .map_err(|_| "bad --n")?;
    let m: usize = a
        .flag("m")
        .ok_or("--m required")?
        .parse()
        .map_err(|_| "bad --m")?;
    let horizon: u64 = a
        .flag("horizon")
        .unwrap_or("48")
        .parse()
        .map_err(|_| "bad --horizon")?;
    let seed: u64 = a
        .flag("seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "bad --seed")?;
    let out = a.flag("o").ok_or("-o <file> required")?;
    let instance = WorkloadSpec {
        family,
        n,
        m,
        horizon,
        seed,
    }
    .generate();
    write_trace(Path::new(out), &instance).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} jobs on {} processors, horizon {} ({})",
        instance.n(),
        instance.m,
        horizon,
        family.name()
    );
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let a = parse(args, &["gantt", "cold-flow", "race"]);
    let path = a.positional.first().ok_or("trace path required")?;
    let instance = load(path)?;
    let alpha = a.alpha()?;
    let p = Polynomial::new(alpha);
    let opts = OfflineOptions {
        warm_start: !a.switches.contains(&"cold-flow"),
        race_engines: a.switches.contains(&"race"),
        ..Default::default()
    };
    let mut rec = RecordingCollector::new();
    rec.count(
        "par.pool.threads",
        ThreadPool::with_threads(a.threads()?).threads() as u64,
    );
    let mut trace = TraceCollector::new("main");
    let observing =
        a.flag("report").is_some() || a.flag("trace").is_some() || a.flag("flame").is_some();
    let res = if observing {
        let mut tee = Tee(&mut rec, &mut trace);
        optimal_schedule_observed(&instance, &opts, &mut tee)
    } else {
        mpss::offline::optimal_schedule_with(&instance, &opts)
    }
    .map_err(|e| e.to_string())?;
    validate_schedule(&instance, &res.schedule, 1e-9)
        .map_err(|v| format!("internal: infeasible optimum: {v:?}"))?;

    println!(
        "optimal schedule for {} jobs on {} processors",
        instance.n(),
        instance.m
    );
    println!("  speed levels ({} phases):", res.phases.len());
    for (i, phase) in res.phases.iter().enumerate() {
        println!(
            "    s_{} = {:.4}  ({} jobs)",
            i + 1,
            phase.speed,
            phase.jobs.len()
        );
    }
    println!(
        "  energy (P = s^{alpha}): {:.4}",
        schedule_energy(&res.schedule, &p)
    );
    println!(
        "  segments {}, migrations {}, preemptions {}, peak speed {:.4}",
        res.schedule.len(),
        res.schedule.migrations(),
        res.schedule.preemptions(),
        res.schedule.max_speed()
    );
    println!("  max-flow computations: {}", res.flow_computations);
    if a.switches.contains(&"gantt") {
        let t0 = instance.min_release().unwrap_or(0.0);
        let t1 = instance.max_deadline().unwrap_or(1.0);
        print!("{}", render_gantt(&res.schedule, t0, t1, 72));
    }
    if let Some(out) = a.flag("svg") {
        let t0 = instance.min_release().unwrap_or(0.0);
        let t1 = instance.max_deadline().unwrap_or(1.0);
        let svg = render_svg(&res.schedule, t0, t1, &SvgOptions::default());
        std::fs::write(out, svg).map_err(|e| e.to_string())?;
        println!("  SVG saved to {out}");
    }
    if let Some(out) = a.flag("save-schedule") {
        let text = serde_json::to_string_pretty(&res.schedule).map_err(|e| e.to_string())?;
        std::fs::write(out, text).map_err(|e| e.to_string())?;
        println!("  schedule saved to {out}");
    }
    if let Some(out) = a.flag("report") {
        rec.close_open_spans();
        rec.write_json(Path::new(out)).map_err(|e| e.to_string())?;
        println!("  run report saved to {out}");
    }
    write_trace_outputs(&a, &trace)?;
    Ok(())
}

fn cmd_solve_batch(args: &[String]) -> Result<(), String> {
    let a = parse(args, &["cold-flow", "race"]);
    let dir = a
        .flag("dir")
        .or_else(|| a.positional.first().copied())
        .ok_or("--dir <traces/> required")?;
    let alpha = a.alpha()?;
    let p = Polynomial::new(alpha);
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|entry| entry.path()))
        .filter(|path| path.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .json traces in {dir}"));
    }
    let mut instances = Vec::with_capacity(paths.len());
    for path in &paths {
        instances.push(load(path.to_str().ok_or("non-UTF-8 trace path")?)?);
    }

    let opts = OfflineOptions {
        warm_start: !a.switches.contains(&"cold-flow"),
        race_engines: a.switches.contains(&"race"),
        ..Default::default()
    };
    let pool = ThreadPool::with_threads(a.threads()?);
    let mut obs = RecordingCollector::new();
    let mut trace = TraceCollector::new("main");
    let started = std::time::Instant::now();
    let outputs = {
        let mut tee = Tee(&mut obs, &mut trace);
        solve_many_observed(&instances, &opts, &pool, &mut tee)
    };
    let elapsed = started.elapsed();

    println!(
        "solved {} instances on {} threads in {:.1} ms",
        outputs.len(),
        pool.threads(),
        elapsed.as_secs_f64() * 1e3
    );
    let report_dir = a.flag("report-dir");
    if let Some(rd) = report_dir {
        std::fs::create_dir_all(rd).map_err(|e| format!("creating {rd}: {e}"))?;
    }
    let mut failures = 0usize;
    for ((path, instance), out) in paths.iter().zip(&instances).zip(&outputs) {
        let name = path
            .file_stem()
            .and_then(|stem| stem.to_str())
            .unwrap_or("<trace>");
        match &out.result {
            Ok(res) => {
                validate_schedule(instance, &res.schedule, 1e-9)
                    .map_err(|v| format!("{name}: infeasible optimum: {v:?}"))?;
                println!(
                    "  {name}: {} jobs / {} procs, {} phases, {} flows, energy {:.4}",
                    instance.n(),
                    instance.m,
                    res.phases.len(),
                    res.flow_computations,
                    schedule_energy(&res.schedule, &p)
                );
            }
            Err(e) => {
                failures += 1;
                println!("  {name}: FAILED ({e})");
            }
        }
        if let Some(rd) = report_dir {
            let target = Path::new(rd).join(format!("{name}.report.json"));
            out.report
                .write_json(&target)
                .map_err(|e| format!("writing {}: {e}", target.display()))?;
        }
    }
    if let Some(rd) = report_dir {
        println!("  per-instance reports saved to {rd}/");
    }
    write_trace_outputs(&a, &trace)?;
    if failures > 0 {
        return Err(format!("{failures} instance(s) failed to solve"));
    }
    Ok(())
}

fn cmd_online(args: &[String]) -> Result<(), String> {
    let a = parse(args, &["cold-flow", "race"]);
    let path = a.positional.first().ok_or("trace path required")?;
    let instance = load(path)?;
    let alpha = a.alpha()?;
    let p = Polynomial::new(alpha);
    let algo = a.flag("algo").ok_or("--algo oa|avr|bkp required")?;
    let warm = !a.switches.contains(&"cold-flow");
    let pool = ThreadPool::with_threads(a.threads()?);
    let oa_opts = OaOptions {
        offline: OfflineOptions {
            warm_start: warm,
            race_engines: a.switches.contains(&"race"),
            ..Default::default()
        },
        reseed: warm,
    };
    let mut rec = RecordingCollector::new();
    rec.count("par.pool.threads", pool.threads() as u64);
    let mut trace = TraceCollector::new("main");
    let observing =
        a.flag("report").is_some() || a.flag("trace").is_some() || a.flag("flame").is_some();
    let (schedule, bound, name) = match algo {
        "oa" => {
            let oa = if observing {
                let mut tee = Tee(&mut rec, &mut trace);
                oa_schedule_observed_with(&instance, &oa_opts, &mut tee)
            } else {
                oa_schedule_with_options(&instance, &oa_opts)
            }
            .map_err(|e| e.to_string())?;
            (oa.schedule, p.oa_bound(), "OA(m)")
        }
        "avr" => {
            let avr = if observing {
                let mut tee = Tee(&mut rec, &mut trace);
                avr_schedule_parallel_observed(&instance, &pool, &mut tee)
            } else {
                avr_schedule_parallel(&instance, &pool)
            };
            (avr, p.avr_bound(), "AVR(m)")
        }
        "bkp" => {
            if instance.m != 1 {
                return Err("BKP is single-processor: regenerate the trace with --m 1".into());
            }
            let bound = 2.0 * (alpha / (alpha - 1.0)).powf(alpha) * std::f64::consts::E.powf(alpha);
            (bkp_schedule(&instance, 64).schedule, bound, "BKP")
        }
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    validate_schedule(&instance, &schedule, 1e-6)
        .map_err(|v| format!("{name} produced an infeasible schedule: {v:?}"))?;
    let report = if observing {
        let mut tee = Tee(&mut rec, &mut trace);
        record_energy_trajectory(&schedule, &p, &mut tee);
        competitive_report_observed(&instance, &schedule, &p, bound, &mut tee)
    } else {
        competitive_report(&instance, &schedule, &p, bound)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "{name} on {} jobs / {} processors, α = {alpha}",
        instance.n(),
        instance.m
    );
    println!("  online energy : {:.4}", report.online_energy);
    println!("  OPT energy    : {:.4}", report.opt_energy);
    println!(
        "  ratio         : {:.4}  (bound {:.3})",
        report.ratio_or_inf(),
        report.bound
    );
    println!(
        "  within bound  : {}",
        if report.within_bound() { "yes" } else { "NO" }
    );
    if let Some(out) = a.flag("report") {
        rec.close_open_spans();
        rec.write_json(Path::new(out)).map_err(|e| e.to_string())?;
        println!("  run report saved to {out}");
    }
    write_trace_outputs(&a, &trace)?;
    Ok(())
}

fn cmd_bounds(args: &[String]) -> Result<(), String> {
    let a = parse(args, &[]);
    let path = a.positional.first().ok_or("trace path required")?;
    let instance = load(path)?;
    let alpha = a.alpha()?;
    let p = Polynomial::new(alpha);
    println!("instance bounds (α = {alpha}):");
    println!(
        "  per-job lower bound       : {:.4}",
        per_job_lower_bound(&instance, &p)
    );
    println!(
        "  best lower bound          : {:.4}",
        best_lower_bound(&instance, alpha)
    );
    println!(
        "  minimum feasible peak speed: {:.4}",
        mpss::offline::speed_bound::minimum_peak_speed(&instance)
    );
    let opt = schedule_energy(
        &optimal_schedule(&instance)
            .map_err(|e| e.to_string())?
            .schedule,
        &p,
    );
    println!("  OPT energy                : {opt:.4}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let a = parse(args, &[]);
    let path = a.positional.first().ok_or("trace path required")?;
    let instance = load(path)?;
    let alpha = a.alpha()?;
    let p = Polynomial::new(alpha);
    let st = instance_stats(&instance);
    println!("instance statistics:");
    println!(
        "  jobs {} on {} processors, horizon {:.2}",
        st.n, st.m, st.horizon
    );
    println!("  load factor          : {:.3}", st.load_factor);
    println!("  max job density      : {:.3}", st.max_density);
    println!("  peak total density Δ : {:.3}", st.peak_total_density);
    println!(
        "  mean/max active jobs : {:.1} / {}",
        st.mean_active, st.max_active
    );
    println!(
        "  crossing pairs       : {:.1}%",
        100.0 * st.crossing_fraction
    );
    let res = optimal_schedule(&instance).map_err(|e| e.to_string())?;
    let js = job_stats(&instance, &res.schedule, &p);
    let fleet = fleet_stats(&js);
    println!("under the optimal schedule (α = {alpha}):");
    println!("  total energy   : {:.4}", fleet.total_energy);
    println!("  mean flow time : {:.3}", fleet.mean_flow_time);
    println!("  max stretch    : {:.3}", fleet.max_stretch);
    println!("  migrating jobs : {}", fleet.migrating_jobs);
    Ok(())
}

fn cmd_report_diff(args: &[String]) -> Result<(), String> {
    let a = parse(args, &["gate-wall", "bench"]);
    let opts = DiffOptions {
        max_regress_pct: a
            .flag("max-regress")
            .map(|v| v.parse().map_err(|_| "bad --max-regress".to_string()))
            .transpose()?,
        only_prefix: a.flag("only").map(str::to_string),
        gate_wall: a.switches.contains(&"gate-wall"),
    };
    let read = |path: &str| -> Result<mpss::obs::json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        mpss::obs::json::Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
    };
    if a.switches.contains(&"bench") {
        let path = a
            .positional
            .first()
            .ok_or("bench trajectory path required")?;
        let gate = diff_bench_trajectory(&read(path)?, a.flag("name"), &opts)?;
        print!("{}", gate.render_text());
        if gate.is_regression() {
            return Err("bench trajectory regression past the threshold".into());
        }
        return Ok(());
    }
    let path_a = a
        .positional
        .first()
        .ok_or("baseline report path required")?;
    let path_b = a
        .positional
        .get(1)
        .ok_or("candidate report path required")?;
    let diff = diff_reports(&read(path_a)?, &read(path_b)?, &opts);
    print!("{}", diff.render_text());
    if diff.is_regression() {
        return Err(format!(
            "{} regression(s) past the threshold",
            diff.regressions.len()
        ));
    }
    Ok(())
}

fn cmd_trace_check(args: &[String]) -> Result<(), String> {
    let a = parse(args, &[]);
    let path = a.positional.first().ok_or("trace path required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let check = validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid Chrome Trace Event JSON — {} events across {} tracks ({} instants, max span depth {})",
        check.events, check.tracks, check.instants, check.max_depth
    );
    println!("  tracks: {}", check.track_names.join(", "));
    if check.span_mismatches > 0 {
        return Err(format!(
            "{path}: trace records {} span mismatch(es) (obs.span_mismatch > 0) — \
             the run closed spans out of order",
            check.span_mismatches
        ));
    }
    Ok(())
}

/// Renders the hub's current snapshot as an aligned stdout table — the
/// no-network way to watch a run (the `--listen` endpoint serves the same
/// state as Prometheus text exposition).
fn print_metrics_table(hub: &mpss::obs::MetricsHub) {
    use mpss::obs::SnapshotValue;
    for row in hub.snapshot() {
        let labels = row
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        let series = if labels.is_empty() {
            row.name.clone()
        } else {
            format!("{}{{{labels}}}", row.name)
        };
        match row.value {
            SnapshotValue::Counter(n) => println!("  {series:<52} {n}"),
            SnapshotValue::Gauge(v) => println!("  {series:<52} {v:.4}"),
            SnapshotValue::Histogram {
                count,
                sum,
                p50,
                p90,
                p99,
                window,
            } => println!(
                "  {series:<52} n={count} sum={sum:.6} p50={p50:.6} p90={p90:.6} p99={p99:.6} (window {window})"
            ),
        }
    }
}

fn cmd_watch(args: &[String]) -> Result<(), String> {
    let a = parse(args, &[]);
    let path = a.positional.first().ok_or("trace path required")?;
    let instance = load(path)?;
    let algo = a.flag("algo").unwrap_or("oa");
    if algo != "oa" && algo != "avr" {
        return Err(format!(
            "unknown algorithm `{algo}` (watch supports oa|avr)"
        ));
    }
    let alpha = a.alpha()?;
    let p = Polynomial::new(alpha);
    let ms_flag = |name: &str, default: &str| -> Result<u64, String> {
        a.flag(name)
            .unwrap_or(default)
            .parse()
            .map_err(|_| format!("bad --{name}"))
    };
    let loops: usize = a
        .flag("loops")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --loops")?;
    let pace = ms_flag("pace-ms", "0")?;
    let interval = ms_flag("interval-ms", "1000")?;
    let hold = ms_flag("hold-ms", "0")?;

    let hub = MetricsHub::new();
    let _server = match a.flag("listen") {
        Some(addr) => {
            let server =
                MetricsServer::bind(addr, &hub).map_err(|e| format!("binding {addr}: {e}"))?;
            // Announce the endpoint immediately (and flushed) so wrapper
            // scripts polling stdout can start scraping before the run ends.
            println!("serving /metrics on http://{}/metrics", server.addr());
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            Some(server)
        }
        None => None,
    };

    let mut arrivals: Vec<Job<f64>> = instance.jobs.clone();
    arrivals.sort_by(|x, y| x.release.partial_cmp(&y.release).unwrap());
    let start = instance.min_release().unwrap_or(0.0);
    let horizon = instance.max_deadline().unwrap_or(start);
    let metrics = SessionMetrics::register(&hub, algo, instance.m);

    println!(
        "watching {algo} on {} jobs / {} processors ({loops} loop(s))",
        instance.n(),
        instance.m
    );
    let mut last_print = std::time::Instant::now();
    let mut pace_and_sample = |hub: &MetricsHub| {
        if pace > 0 {
            std::thread::sleep(std::time::Duration::from_millis(pace));
        }
        if interval > 0 && last_print.elapsed().as_millis() >= u128::from(interval) {
            print_metrics_table(hub);
            last_print = std::time::Instant::now();
        }
    };
    let mut total_energy = 0.0;
    for _ in 0..loops {
        let schedule = match algo {
            "oa" => {
                let mut session = OaSession::new(instance.m, start);
                session.attach_metrics(metrics.clone());
                for job in &arrivals {
                    session.advance_to(job.release).map_err(|e| e.to_string())?;
                    session
                        .arrive(job.deadline, job.volume)
                        .map_err(|e| e.to_string())?;
                    pace_and_sample(&hub);
                }
                session.advance_to(horizon).map_err(|e| e.to_string())?;
                session.finish().map_err(|e| e.to_string())?
            }
            _ => {
                let mut session = AvrSession::new(instance.m, start);
                session.attach_metrics(metrics.clone());
                for job in &arrivals {
                    session.advance_to(job.release).map_err(|e| e.to_string())?;
                    session
                        .arrive(job.deadline, job.volume)
                        .map_err(|e| e.to_string())?;
                    pace_and_sample(&hub);
                }
                session.advance_to(horizon).map_err(|e| e.to_string())?;
                session.finish().map_err(|e| e.to_string())?
            }
        };
        total_energy += schedule_energy(&schedule, &p);
    }
    println!("final metrics snapshot:");
    print_metrics_table(&hub);
    println!("  energy across {loops} loop(s) (P = s^{alpha}): {total_energy:.4}");
    if let Some(out) = a.flag("metrics-out") {
        std::fs::write(out, hub.render()).map_err(|e| e.to_string())?;
        println!("  exposition saved to {out}");
    }
    if hold > 0 {
        println!("holding the endpoint open for {hold} ms");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_millis(hold));
    }
    Ok(())
}

/// `serve`: the multi-tenant scheduling daemon. Speaks the newline-delimited
/// JSON protocol of PROTOCOL.md on stdin/stdout by default, or on a TCP
/// socket with `--listen`; `--metrics` additionally exposes the shared hub
/// as Prometheus text exposition.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let a = parse(args, &[]);
    let compact_window = match a.flag("compact-window") {
        Some(w) => {
            let w: f64 = w.parse().map_err(|_| "bad --compact-window")?;
            if !(w.is_finite() && w >= 0.0) {
                return Err("--compact-window must be a finite non-negative number".into());
            }
            Some(w)
        }
        None => None,
    };
    let threads = match a.flag("threads") {
        Some(t) => Some(t.parse::<usize>().map_err(|_| "bad --threads")?),
        None => None,
    };
    let log_level = match a.flag("log-level") {
        Some(l) => mpss::obs::Level::parse(l)
            .ok_or_else(|| format!("bad --log-level `{l}` (trace|debug|info|warn|error)"))?,
        None => mpss::obs::Level::Info,
    };
    let flight_capacity = match a.flag("flight-capacity") {
        Some(n) => n.parse::<usize>().map_err(|_| "bad --flight-capacity")?,
        None => DaemonConfig::default().flight_capacity,
    };
    let slow_replan_ms = match a.flag("slow-replan-ms") {
        Some(ms) => {
            let ms: f64 = ms.parse().map_err(|_| "bad --slow-replan-ms")?;
            if !(ms.is_finite() && ms >= 0.0) {
                return Err("--slow-replan-ms must be a finite non-negative number".into());
            }
            Some(ms)
        }
        None => None,
    };
    let postmortem_dir = a.flag("postmortem-dir").map(std::path::PathBuf::from);
    if slow_replan_ms.is_some() && postmortem_dir.is_none() {
        return Err("--slow-replan-ms needs --postmortem-dir (nowhere to put the bundle)".into());
    }
    let mut daemon = Daemon::new(DaemonConfig {
        compact_window,
        threads,
        log_level,
        log_stderr: true,
        flight_capacity,
        postmortem_dir,
        slow_replan_ms,
        ..DaemonConfig::default()
    });
    let _metrics_server = match a.flag("metrics") {
        Some(addr) => {
            let server = MetricsServer::bind(addr, daemon.hub())
                .map_err(|e| format!("binding metrics on {addr}: {e}"))?;
            eprintln!("serving /metrics on http://{}/metrics", server.addr());
            Some(server)
        }
        None => None,
    };
    match a.flag("listen") {
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            eprintln!("serving mpss protocol on {local} (newline-delimited JSON; see PROTOCOL.md)");
            serve_tcp(&listener, &mut daemon).map_err(|e| format!("serving: {e}"))?;
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            daemon
                .serve_io(stdin.lock(), stdout.lock())
                .map_err(|e| format!("serving stdio: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_scrape(args: &[String]) -> Result<(), String> {
    let a = parse(args, &[]);
    let addr = a.positional.first().ok_or("endpoint HOST:PORT required")?;
    let text = http_get(addr, "/metrics")?;
    let expo =
        parse_exposition(&text).map_err(|e| format!("invalid exposition from {addr}: {e}"))?;
    let samples: usize = expo.families.iter().map(|f| f.samples.len()).sum();
    let unknown: Vec<&str> = expo
        .families
        .iter()
        .filter(|f| f.name.starts_with("mpss_") && !mpss::obs::names::known_metric(&f.name))
        .map(|f| f.name.as_str())
        .collect();
    println!(
        "{addr}: exposition parses cleanly — {} families, {samples} samples",
        expo.families.len()
    );
    if let Some(out) = a.flag("out") {
        std::fs::write(out, &text).map_err(|e| e.to_string())?;
        println!("  exposition saved to {out}");
    }
    if !unknown.is_empty() {
        return Err(format!(
            "unknown mpss_ metric families (not in the mpss_obs::names manifest): {}",
            unknown.join(", ")
        ));
    }
    Ok(())
}

/// Opens a postmortem bundle: incident summary, flight timeline, optional
/// counter diff against a baseline exposition, and a bit-identical replay
/// of the embedded checkpoint.
fn cmd_postmortem(args: &[String]) -> Result<(), String> {
    use mpss::obs::json::Json;
    use mpss::serve::protocol::Request;

    let a = parse(args, &[]);
    let bundle = Path::new(a.positional.first().ok_or("bundle directory required")?);
    let manifest = mpss::serve::postmortem::read_manifest(bundle)?;
    let text = |key: &str| -> String {
        match manifest.get(key) {
            Some(Json::Str(s)) => s.clone(),
            Some(other) => other.render(),
            None => "-".into(),
        }
    };
    let tenant = match manifest.get("tenant") {
        Some(Json::Str(t)) => t.clone(),
        _ => unreachable!("read_manifest validated `tenant`"),
    };
    println!("postmortem bundle {}", bundle.display());
    println!("  tenant: {tenant}");
    println!("  reason: {}  (op: {})", text("reason"), text("op"));
    if let Some(Json::Obj(_)) = manifest.get("error") {
        let error = manifest.get("error").unwrap();
        let field = |k: &str| match error.get(k) {
            Some(Json::Str(s)) => s.clone(),
            _ => "-".into(),
        };
        println!("  error:  [{}] {}", field("kind"), field("message"));
    }
    if let Some(replan @ Json::Obj(_)) = manifest.get("replan") {
        println!("  replan: {}", replan.render());
    }

    // Flight-recorder timeline: the tenant's ring, then the daemon's.
    let flight_text = std::fs::read_to_string(bundle.join("flight.json"))
        .map_err(|e| format!("reading flight.json: {e}"))?;
    let flight = Json::parse(&flight_text).map_err(|e| format!("parsing flight.json: {e}"))?;
    for scope in ["tenant", "daemon"] {
        let Some(ring @ Json::Obj(_)) = flight.get(scope) else {
            continue;
        };
        let (dropped, recorded) = (
            ring.get("dropped_total").map_or("?".into(), Json::render),
            ring.get("recorded_total").map_or("?".into(), Json::render),
        );
        println!(
            "\n{scope} flight recorder ({recorded} recorded, {dropped} dropped before the window):"
        );
        let Some(Json::Arr(events)) = ring.get("events") else {
            continue;
        };
        for event in events {
            let seq = event.get("seq").map_or("?".into(), Json::render);
            let ms = match event.get("ts_ns") {
                Some(Json::UInt(ns)) => format!("{:10.3}ms", *ns as f64 / 1e6),
                _ => "         ?".into(),
            };
            let class = match event.get("kind") {
                Some(Json::Str(c)) => c.clone(),
                _ => "?".into(),
            };
            let detail = match class.as_str() {
                "request" => format!(
                    "op={} ok={}{}",
                    event.get("op").map_or("?".into(), Json::render),
                    event.get("ok").map_or("?".into(), Json::render),
                    match event.get("error_kind") {
                        Some(Json::Str(kind)) => format!(" error={kind}"),
                        _ => String::new(),
                    }
                ),
                "replan" => format!(
                    "latency_ms={} work_ops={} patched_arcs={} engine={}",
                    event.get("latency_ms").map_or("?".into(), Json::render),
                    event.get("work_ops").map_or("?".into(), Json::render),
                    event.get("patched_arcs").map_or("?".into(), Json::render),
                    event.get("engine").map_or("?".into(), Json::render),
                ),
                "error" => format!(
                    "kind={} message={}",
                    event.get("error_kind").map_or("?".into(), Json::render),
                    event.get("message").map_or("?".into(), Json::render),
                ),
                _ => event.render(),
            };
            println!("  #{seq:<5} {ms}  {class:<7} {detail}");
        }
    }

    // Counter diff against a baseline exposition, when given.
    if let Some(baseline_path) = a.flag("baseline") {
        let read_counters = |path: &Path| -> Result<Vec<(String, f64)>, String> {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let expo = parse_exposition(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            let mut totals: Vec<(String, f64)> = Vec::new();
            for family in &expo.families {
                if family.kind != "counter" {
                    continue;
                }
                for sample in &family.samples {
                    let labels = sample
                        .labels
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(",");
                    let series = if labels.is_empty() {
                        family.name.clone()
                    } else {
                        format!("{}{{{labels}}}", family.name)
                    };
                    totals.push((series, sample.value));
                }
            }
            totals.sort_by(|x, y| x.0.cmp(&y.0));
            Ok(totals)
        };
        let bundled = read_counters(&bundle.join("metrics.prom"))?;
        let base = read_counters(Path::new(baseline_path))?;
        println!("\ncounter diff vs {baseline_path} (bundle - baseline):");
        let mut moved = 0;
        for (series, value) in &bundled {
            let before = base
                .iter()
                .find(|(name, _)| name == series)
                .map_or(0.0, |(_, v)| *v);
            if (value - before).abs() > 0.0 {
                println!("  {series:<56} {before:>12} -> {value}");
                moved += 1;
            }
        }
        if moved == 0 {
            println!("  (no counter moved)");
        }
    }

    // Replay: restore the bundled checkpoint through a fresh session and
    // reproduce the tenant's plan bit-identically.
    let expected = manifest
        .get("plan")
        .ok_or("manifest has no `plan` to replay against")?
        .render();
    let mut daemon = Daemon::new(DaemonConfig::default());
    let restore = daemon.handle(&Request::Restore {
        tenant: Some(tenant.clone()),
        dir: bundle.display().to_string(),
    });
    if !restore.is_ok() {
        return Err(format!(
            "replaying the bundled checkpoint failed: {}",
            restore.render_line()
        ));
    }
    let replayed = daemon.handle(&Request::QueryPlan {
        tenant: tenant.clone(),
    });
    let Json::Obj(pairs) = replayed.to_json().clone() else {
        return Err("query-plan reply was not an object".into());
    };
    let got = Json::Obj(pairs.into_iter().filter(|(k, _)| k != "ok").collect()).render();
    if got == expected {
        println!("\nreplay: restored `{tenant}` from the bundle — plan reproduced bit-identically");
        Ok(())
    } else {
        Err(format!(
            "replay mismatch for `{tenant}`:\n  expected {expected}\n  got      {got}"
        ))
    }
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let a = parse(args, &[]);
    let trace = a.positional.first().ok_or("trace path required")?;
    let sched_path = a.positional.get(1).ok_or("schedule path required")?;
    let instance = load(trace)?;
    let text = std::fs::read_to_string(sched_path).map_err(|e| e.to_string())?;
    let schedule: Schedule<f64> = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    match validate_schedule(&instance, &schedule, 1e-9) {
        Ok(()) => {
            println!("schedule is FEASIBLE for {trace}");
            println!(
                "  energy (s³): {:.4}",
                schedule_energy(&schedule, &Polynomial::cube())
            );
            Ok(())
        }
        Err(violations) => {
            println!("schedule is INFEASIBLE ({} violations):", violations.len());
            for v in violations.iter().take(10) {
                println!("  - {v}");
            }
            Err("validation failed".into())
        }
    }
}
