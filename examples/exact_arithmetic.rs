//! Exact-arithmetic pipeline: the whole offline algorithm — intervals,
//! max flows, speeds, packing, energy — in `i128` rationals, bit-exact on
//! integer instances, cross-checked against the `f64` path.
//!
//! Run with: `cargo run --example exact_arithmetic`

use mpss::model::energy::schedule_energy_poly;
use mpss::numeric::rational::rat;
use mpss::prelude::*;

fn main() {
    // Integer instance: exact in both numeric modes.
    let float_instance = Instance::new(
        2,
        vec![
            job(0.0, 3.0, 3.0),
            job(0.0, 3.0, 3.0),
            job(0.0, 3.0, 3.0),
            job(1.0, 5.0, 2.0),
        ],
    )
    .unwrap();
    let exact_instance = float_instance.to_rational();

    let float_res = optimal_schedule(&float_instance).unwrap();
    let exact_res = optimal_schedule(&exact_instance).unwrap();
    assert_feasible(&exact_instance, &exact_res.schedule, 0.0); // zero tolerance!

    println!("Exact speed ladder:");
    for (i, phase) in exact_res.phases.iter().enumerate() {
        println!(
            "  phase {}: speed = {} (≈ {:.6}), jobs {:?}",
            i + 1,
            phase.speed,
            phase.speed.to_f64(),
            phase.jobs
        );
    }

    // Exact energy under P(s) = s² and s³ as honest-to-goodness fractions.
    let e2 = schedule_energy_exact(&exact_res.schedule, 2);
    let e3 = schedule_energy_exact(&exact_res.schedule, 3);
    println!("\nExact energies:");
    println!("  E[s²] = {e2} (≈ {:.6})", e2.to_f64());
    println!("  E[s³] = {e3} (≈ {:.6})", e3.to_f64());

    // The f64 path lands within rounding error of the exact value.
    let f2 = schedule_energy_poly(&float_res.schedule, 2);
    println!("\nf64 pipeline E[s²] = {f2:.12}");
    println!("difference         = {:.3e}", (f2 - e2.to_f64()).abs());
    assert!((f2 - e2.to_f64()).abs() <= 1e-9 * f2.max(1.0));

    // Rational arithmetic demo: exact density bookkeeping.
    let third = rat(1, 3);
    let sixth = rat(1, 6);
    assert_eq!(third + sixth, rat(1, 2));
    println!("\n1/3 + 1/6 = {} — no 0.49999999 in sight.", third + sixth);
}
