//! Quickstart: build an instance, compute the optimal schedule, inspect it,
//! and compare the online algorithms against it.
//!
//! Run with: `cargo run --example quickstart`

use mpss::prelude::*;

fn main() {
    // Three jobs on two processors: (release, deadline, volume).
    // Job 2 arrives later — the online algorithms won't see it coming.
    let instance = Instance::new(
        2,
        vec![
            job(0.0, 2.0, 3.0), // urgent: 3 units in [0, 2)
            job(0.0, 4.0, 2.0), // relaxed: 2 units in [0, 4)
            job(1.0, 3.0, 2.0), // surprise arrival at t = 1
        ],
    )
    .expect("valid instance");

    // ---- Offline optimum (paper Fig. 2: flow-based, power-function-free).
    let opt = optimal_schedule(&instance).expect("solvable");
    assert_feasible(&instance, &opt.schedule, 1e-9);

    println!(
        "Optimal schedule ({} max-flow computations):",
        opt.flow_computations
    );
    for (i, phase) in opt.phases.iter().enumerate() {
        println!(
            "  phase {}: speed {:.4}  jobs {:?}",
            i + 1,
            phase.speed,
            phase.jobs
        );
    }
    for seg in &opt.schedule.segments {
        println!(
            "  proc {} runs job {} during [{:.3}, {:.3}) at speed {:.3}",
            seg.proc, seg.job, seg.start, seg.end, seg.speed
        );
    }

    // ---- Energy under the cube-root rule P(s) = s³ (and any convex P).
    let p = Polynomial::cube();
    let e_opt = schedule_energy(&opt.schedule, &p);
    println!("\nEnergy under P(s) = s³:");
    println!("  OPT            = {e_opt:.4}");

    // ---- Online algorithms.
    let oa = oa_schedule(&instance).expect("OA run");
    let e_oa = schedule_energy(&oa.schedule, &p);
    println!(
        "  OA(m)          = {e_oa:.4}  (bound α^α = {:.1})",
        p.oa_bound()
    );

    let avr = avr_schedule(&instance);
    let e_avr = schedule_energy(&avr, &p);
    println!(
        "  AVR(m)         = {e_avr:.4}  (bound (2α)^α/2+1 = {:.1})",
        p.avr_bound()
    );

    // ---- Ablation: how much does migration buy?
    let nm = non_migratory_schedule(&instance, 3.0, AssignPolicy::GreedyEnergy);
    let e_nm = schedule_energy(&nm.schedule, &p);
    println!("  non-migratory  = {e_nm:.4}");

    println!("\nCompetitive ratios (measured):");
    println!("  OA / OPT  = {:.4}", e_oa / e_opt);
    println!("  AVR / OPT = {:.4}", e_avr / e_opt);
    assert!(e_oa / e_opt <= p.oa_bound() + 1e-9);
    assert!(e_avr / e_opt <= p.avr_bound() + 1e-9);
}
