//! Streaming trace export: solve an instance with engine racing while a
//! [`TraceCollector`] records every span, instant, and counter sample, then
//! export the run as Chrome Trace Event JSON (open it in
//! <https://ui.perfetto.dev> or `chrome://tracing`) and as collapsed stacks
//! for flamegraph tooling.
//!
//! The exported trace has one named track per execution lane: the caller's
//! `main` track plus, because racing is on, a `race.dinic` and a `race.pr`
//! track carrying each contender's `race.probe` spans — with a
//! `race.cancelled` instant on the loser of every probe.
//!
//! Run with: `cargo run --example perfetto_trace`

use mpss::obs::validate_chrome_trace;
use mpss::prelude::*;

fn main() -> std::io::Result<()> {
    let instance = Instance::new(
        3,
        vec![
            job(0.0, 1.0, 4.0),
            job(0.0, 1.0, 4.0),
            job(0.0, 2.0, 1.0),
            job(0.5, 3.0, 2.0),
            job(1.0, 4.0, 3.0),
            job(2.0, 6.0, 1.5),
            job(2.5, 5.0, 2.5),
        ],
    )
    .expect("valid instance");

    let opts = OfflineOptions {
        race_engines: true,
        ..Default::default()
    };
    let mut trace = TraceCollector::new("main");
    let result = optimal_schedule_observed(&instance, &opts, &mut trace).expect("solvable");
    println!(
        "solved: {} phases, {} max-flow computations",
        result.phases.len(),
        result.flow_computations
    );

    let dir = std::env::temp_dir().join("mpss-traces");
    std::fs::create_dir_all(&dir)?;
    let chrome = dir.join("race.trace.json");
    trace.write_chrome_trace(&chrome)?;
    let folded = dir.join("race.folded");
    std::fs::write(&folded, trace.collapsed_stacks())?;

    // The exporter promises Perfetto-loadable output; check it the same way
    // `mpss-cli trace-check` does.
    let text = std::fs::read_to_string(&chrome)?;
    let check = validate_chrome_trace(&text).expect("exporter emits valid traces");
    println!(
        "trace: {} events on {} tracks ({:?}), {} instants, max span depth {}",
        check.events, check.tracks, check.track_names, check.instants, check.max_depth
    );
    println!("chrome trace : {}", chrome.display());
    println!("collapsed    : {}", folded.display());
    Ok(())
}
