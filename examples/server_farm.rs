//! Server-farm scenario: a day of batch jobs on an 8-processor cluster —
//! the multi-processor environment the paper's introduction motivates
//! (compute clusters / server farms with power dissipation concerns).
//!
//! Compares the optimal migratory schedule against the online algorithms
//! and the non-migratory heuristic across three load regimes, and reports
//! the energy saved by computing speeds optimally.
//!
//! Run with: `cargo run --release --example server_farm`

use mpss::prelude::*;

fn scenario(name: &str, spec: WorkloadSpec, alpha: f64) {
    let instance = spec.generate();
    let p = Polynomial::new(alpha);

    let opt = optimal_schedule(&instance).expect("offline optimum");
    assert_feasible(&instance, &opt.schedule, 1e-9);
    let e_opt = schedule_energy(&opt.schedule, &p);

    let oa = oa_schedule(&instance).expect("OA");
    let e_oa = schedule_energy(&oa.schedule, &p);
    let avr = avr_schedule(&instance);
    let e_avr = schedule_energy(&avr, &p);
    let nm = non_migratory_schedule(&instance, alpha, AssignPolicy::GreedyEnergy);
    let e_nm = schedule_energy(&nm.schedule, &p);

    // A naive baseline every operator understands: run everything at each
    // interval's AVR total but on one processor's worth of speed... instead
    // we use the per-job lower bound as the "physics floor".
    let floor = per_job_lower_bound(&instance, &p);

    println!(
        "\n=== {name} (n = {}, m = {}, α = {alpha}) ===",
        instance.n(),
        instance.m
    );
    println!("  physics floor (per-job LB) : {floor:>12.2}");
    println!("  OPT (migration, offline)   : {e_opt:>12.2}");
    println!(
        "  OA(m)  (online)            : {e_oa:>12.2}   ratio {:.3} (bound {:.1})",
        e_oa / e_opt,
        p.oa_bound()
    );
    println!(
        "  AVR(m) (online)            : {e_avr:>12.2}   ratio {:.3} (bound {:.1})",
        e_avr / e_opt,
        p.avr_bound()
    );
    println!(
        "  no-migration heuristic     : {e_nm:>12.2}   migration saves {:.1}%",
        100.0 * (e_nm - e_opt) / e_nm
    );
    println!(
        "  schedule stats: {} segments, {} migrations, {} preemptions, peak speed {:.2}",
        opt.schedule.len(),
        opt.schedule.migrations(),
        opt.schedule.preemptions(),
        opt.schedule.max_speed()
    );
}

fn main() {
    println!("Server farm: 8 variable-speed processors, cube-root power rule");

    scenario(
        "overnight batch (relaxed deadlines)",
        WorkloadSpec {
            family: Family::Uniform,
            n: 48,
            m: 8,
            horizon: 96,
            seed: 1,
        },
        3.0,
    );
    scenario(
        "bursty interactive load",
        WorkloadSpec {
            family: Family::Bursty,
            n: 48,
            m: 8,
            horizon: 96,
            seed: 2,
        },
        3.0,
    );
    scenario(
        "near-saturation (tight capacity)",
        WorkloadSpec {
            family: Family::TightLoad,
            n: 48,
            m: 8,
            horizon: 96,
            seed: 3,
        },
        3.0,
    );
}
