//! A guided tour of the paper, section by section, on one running instance.
//!
//! Run with: `cargo run --example paper_tour`

use mpss::model::Intervals;
use mpss::offline::certificate::verify_certificate;
use mpss::online::avr_proof_terms;
use mpss::prelude::*;
use mpss::sim::render_gantt;

fn main() {
    println!("== §1: the model ==============================================");
    let instance = Instance::new(
        2,
        vec![
            job(0.0, 1.0, 6.0), // J0: frantic
            job(0.0, 2.0, 3.0), // J1
            job(0.0, 2.0, 3.0), // J2
            job(0.0, 6.0, 2.0), // J3: relaxed
            job(2.0, 8.0, 2.0), // J4: arrives later
        ],
    )
    .unwrap();
    println!(
        "{} jobs on m = {} migratory variable-speed processors; energy = ∫P(s)dt.",
        instance.n(),
        instance.m
    );
    let iv = Intervals::from_instance(&instance);
    println!("event partition I_j: {:?}", iv.times);

    println!("\n== §2: the combinatorial offline algorithm (Fig. 1 + Fig. 2) ==");
    let opt = optimal_schedule(&instance).unwrap();
    println!(
        "{} max-flow computations over the job × interval network produced the ladder:",
        opt.flow_computations
    );
    for (i, phase) in opt.phases.iter().enumerate() {
        println!(
            "  J_{} = {:?} at s_{} = {:.4}  (m_ij = {:?})",
            i + 1,
            phase.jobs,
            i + 1,
            phase.speed,
            phase.procs
        );
    }
    assert_feasible(&instance, &opt.schedule, 1e-9);
    verify_certificate(&instance, &opt, 1e-9).expect("structural certificate");
    println!("certificate verified: feasible, Lemma 3 reservations, saturated phases ✓");
    print!("\n{}", render_gantt(&opt.schedule, 0.0, 8.0, 64));

    let p = Polynomial::cube();
    let e_opt = schedule_energy(&opt.schedule, &p);
    println!("\nTheorem 1: this is optimal for EVERY convex non-decreasing P.");
    println!("  E[s³](OPT) = {e_opt:.4}");

    println!("\n== §3.1: Optimal Available (Theorem 2) =========================");
    let oa = oa_schedule(&instance).unwrap();
    let e_oa = schedule_energy(&oa.schedule, &p);
    println!(
        "OA(m) replanned {} times; E[s³](OA) = {:.4}; ratio {:.4} ≤ α^α = {}",
        oa.replans,
        e_oa,
        e_oa / e_opt,
        p.oa_bound()
    );
    let audit = audit_oa_potential(&instance, 3.0, 96);
    println!(
        "potential-function audit: max drift {:.2e} (proof inequality holds: {})",
        audit.max_violation,
        audit.holds(1e-6)
    );

    println!("\n== §3.2: Average Rate (Theorem 3) ==============================");
    let avr = avr_schedule(&instance);
    let e_avr = schedule_energy(&avr, &p);
    println!(
        "AVR(m): E[s³] = {:.4}; ratio {:.4} ≤ (2α)^α/2 + 1 = {}",
        e_avr,
        e_avr / e_opt,
        p.avr_bound()
    );
    let terms = avr_proof_terms(&instance, 3.0);
    println!(
        "proof chain (9): E_AVR {:.3} ≤ flattened {:.3} + per-job {:.3} — holds: {}",
        terms.e_avr,
        terms.flattened_density_term,
        terms.per_job_term,
        terms.ineq_9()
    );

    println!("\n== §4: conclusion's extensions, implemented ====================");
    println!(
        "  min feasible peak speed  : {:.4} (= s₁)",
        mpss::offline::speed_bound::minimum_peak_speed(&instance)
    );
    let menu: Vec<f64> = (1..=8).map(|q| 6.0 * q as f64 / 8.0).collect();
    let disc = discretize_speeds(&opt.schedule, &menu).unwrap();
    println!(
        "  8-level frequency menu   : E[s³] = {:.4} ({:+.2}% vs continuous)",
        schedule_energy(&disc, &p),
        100.0 * (schedule_energy(&disc, &p) - e_opt) / e_opt
    );
    let sleep = mpss::offline::sleep::sleep_energy(
        &opt.schedule,
        &p,
        0.3,
        1.0,
        0.0,
        8.0,
        mpss::offline::sleep::IdlePolicy::Threshold,
    );
    println!(
        "  sleep-state layer        : total {:.4} ({} wakeups)",
        sleep.total(),
        sleep.num_wakeups
    );
    println!("\ntour complete — every number above is covered by the test-suite.");
}
