//! Live scheduling session: drive OA(m) interactively the way a cluster
//! power manager would — jobs arrive over (simulated) time, the session
//! replans, and the operator reads back current speeds, per-job plans, and
//! fleet statistics.
//!
//! Run with: `cargo run --example live_session`

use mpss::prelude::*;
use mpss::sim::{fleet_stats, job_stats};

fn main() {
    let p = Polynomial::cube();
    let mut session = OaSession::new(2, 0.0);

    println!("t = 0.0: two batch jobs arrive");
    let a = session.arrive(8.0, 6.0).expect("job A");
    let b = session.arrive(6.0, 4.0).expect("job B");
    println!(
        "  planned speeds: A = {:.3}, B = {:.3}",
        session.planned_speed(a).unwrap(),
        session.planned_speed(b).unwrap()
    );
    println!("  processors now: {:?}", session.current_speeds());

    session.advance_to(2.0).expect("advance");
    println!("\nt = 2.0: an urgent job lands (deadline 4, volume 5)");
    let c = session.arrive(4.0, 5.0).expect("job C");
    println!(
        "  replanned speeds: A = {:.3}, B = {:.3}, C = {:.3}",
        session.planned_speed(a).unwrap(),
        session.planned_speed(b).unwrap(),
        session.planned_speed(c).unwrap()
    );
    println!(
        "  remaining volumes: A = {:.2}, B = {:.2}, C = {:.2}",
        session.remaining_volume(a).unwrap(),
        session.remaining_volume(b).unwrap(),
        session.remaining_volume(c).unwrap()
    );
    println!("  replans so far: {}", session.replans());

    let schedule = session.finish().expect("run to completion");

    // Reconstruct the batch instance for validation and reporting.
    let instance = Instance::new(
        2,
        vec![job(0.0, 8.0, 6.0), job(0.0, 6.0, 4.0), job(2.0, 4.0, 5.0)],
    )
    .unwrap();
    assert_feasible(&instance, &schedule, 1e-6);

    println!("\nfinal per-job report:");
    let stats = job_stats(&instance, &schedule, &p);
    for s in &stats {
        println!(
            "  job {}: done at {:.2} (stretch {:.2}), busy {:.2}, energy {:.2}, {} processor(s)",
            s.job, s.completion_time, s.stretch, s.busy_time, s.energy, s.processors_used
        );
    }
    let fleet = fleet_stats(&stats);
    println!(
        "\nfleet: energy {:.2}, mean flow time {:.2}, {} migrating job(s)",
        fleet.total_energy, fleet.mean_flow_time, fleet.migrating_jobs
    );

    // And the theorem holds, live:
    let report = competitive_report(&instance, &schedule, &p, p.oa_bound()).unwrap();
    println!(
        "OA ratio vs offline OPT: {:.4} (α^α bound = {:.0}) — within: {}",
        report.ratio_or_inf(),
        report.bound,
        report.within_bound()
    );
    assert!(report.within_bound());
}
