//! Trace tooling: generate a workload, archive it as JSON, reload it, and
//! schedule it — the round-trip a user needs to run these algorithms on
//! their own job traces.
//!
//! Run with: `cargo run --example trace_tools`

use mpss::prelude::*;
use mpss::workloads::{read_trace, write_trace};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("mpss-traces");
    std::fs::create_dir_all(&dir)?;

    // Generate one instance per family and archive them.
    let mut paths = Vec::new();
    for family in Family::ALL {
        let spec = WorkloadSpec {
            family,
            n: 16,
            m: 4,
            horizon: 64,
            seed: 7,
        };
        let instance = spec.generate();
        let path = dir.join(format!("{}.json", family.name()));
        write_trace(&path, &instance)?;
        paths.push((family, path));
    }
    println!("archived {} traces under {}", paths.len(), dir.display());

    // Reload and schedule each one.
    let p = Polynomial::cube();
    println!(
        "\n{:<16} {:>10} {:>10} {:>8} {:>8}",
        "family", "E[OPT]", "E[AVR]", "ratio", "migr"
    );
    for (family, path) in &paths {
        let instance = read_trace(path)?;
        let opt = optimal_schedule(&instance).expect("offline optimum");
        assert_feasible(&instance, &opt.schedule, 1e-9);
        let avr = avr_schedule(&instance);
        let e_opt = schedule_energy(&opt.schedule, &p);
        let e_avr = schedule_energy(&avr, &p);
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>8.3} {:>8}",
            family.name(),
            e_opt,
            e_avr,
            e_avr / e_opt,
            opt.schedule.migrations()
        );
    }
    Ok(())
}
