//! Online arrival simulation: watch OA(m) replan as jobs arrive and verify
//! the paper's monotonicity lemmas live (Lemma 7: planned job speeds only
//! rise; Lemma 8: the minimum processor speed only rises).
//!
//! Run with: `cargo run --example online_race`

use mpss::online::oa::oa_schedule_with_plans;
use mpss::prelude::*;

fn main() {
    // A bursty stream on two processors: each burst forces a replan.
    let instance = Instance::new(
        2,
        vec![
            job(0.0, 10.0, 4.0),
            job(0.0, 6.0, 3.0),
            job(2.0, 8.0, 5.0),
            job(2.0, 5.0, 2.0),
            job(4.0, 7.0, 4.0),
            job(5.0, 10.0, 3.0),
        ],
    )
    .expect("valid instance");

    let (outcome, plans) = oa_schedule_with_plans(&instance).expect("OA run");
    assert_feasible(&instance, &outcome.schedule, 1e-6);

    println!(
        "OA(2) on a bursty stream — {} replanning events\n",
        outcome.replans
    );
    for record in &plans {
        println!(
            "t = {:.1}: replanned {} live jobs",
            record.time,
            record.job_map.len()
        );
        for (i, phase) in record.plan.phases.iter().enumerate() {
            let originals: Vec<_> = phase.jobs.iter().map(|&s| record.job_map[s]).collect();
            println!(
                "    level {}: speed {:.3}  jobs {:?}",
                i + 1,
                phase.speed,
                originals
            );
        }
    }

    // Lemma 7 live check: per-job planned speeds across consecutive plans.
    println!("\nLemma 7 check (job speeds never drop across replans):");
    for w in plans.windows(2) {
        let (old, new) = (&w[0], &w[1]);
        for (sub, &orig) in old.job_map.iter().enumerate() {
            let (Some(s_old), Some(pos)) = (
                old.plan.speed_of(sub),
                new.job_map.iter().position(|&o| o == orig),
            ) else {
                continue;
            };
            if let Some(s_new) = new.plan.speed_of(pos) {
                let arrow = if s_new > s_old + 1e-9 { "↑" } else { "=" };
                println!(
                    "  t {:.1} → {:.1}  job {}: {:.3} {arrow} {:.3}",
                    old.time, new.time, orig, s_old, s_new
                );
                assert!(s_new >= s_old - 1e-6 * s_old.max(1.0), "Lemma 7 violated!");
            }
        }
    }

    let p = Polynomial::new(2.0);
    let report = competitive_report(&instance, &outcome.schedule, &p, p.oa_bound()).unwrap();
    println!(
        "\nenergy: OA = {:.3}, OPT = {:.3}, ratio = {:.4} (α^α bound = {:.1})",
        report.online_energy,
        report.opt_energy,
        report.ratio_or_inf(),
        report.bound
    );
    assert!(report.within_bound());
}
