//! Visualization tooling: text Gantt charts, speed profiles, utilization
//! and energy time-series for an optimal schedule, plus the online
//! causality audit.
//!
//! Run with: `cargo run --example gantt_profile`

use mpss::prelude::*;
use mpss::sim::{
    audit_online_causality, energy_series, render_gantt, speed_profile, utilization, Timeline,
};

fn main() {
    let instance = WorkloadSpec {
        family: Family::Bursty,
        n: 12,
        m: 3,
        horizon: 24,
        seed: 8,
    }
    .generate();
    let opt = optimal_schedule(&instance).expect("offline optimum");
    assert_feasible(&instance, &opt.schedule, 1e-9);

    println!("Gantt (one char ≈ 0.4 time units, '.' = idle):\n");
    print!("{}", render_gantt(&opt.schedule, 0.0, 24.0, 60));

    let timeline = Timeline::build(&opt.schedule);
    println!("\nper-processor stats:");
    for p in &timeline.processors {
        println!(
            "  P{}: busy {:>6.2}, idle {:>6.2}, context switches {}",
            p.proc,
            p.busy_time(),
            p.idle_time(0.0, 24.0),
            p.context_switches()
        );
    }
    println!(
        "machine utilization: {:.1}%",
        100.0 * utilization(&opt.schedule, 0.0, 24.0)
    );

    let profile = speed_profile(&opt.schedule);
    println!(
        "\ntotal-speed profile: {} pieces, peak Σ speeds = {:.2}, ∫Σs dt = total work = {:.2}",
        profile.values.len(),
        profile.values.iter().cloned().fold(0.0, f64::max),
        profile.integral()
    );

    let p = Polynomial::cube();
    let (times, cum) = energy_series(&opt.schedule, &p);
    println!("\ncumulative energy (P = s³):");
    for i in (0..times.len()).step_by((times.len() / 6).max(1)) {
        println!("  t = {:>6.2}  E = {:>10.2}", times[i], cum[i]);
    }
    println!(
        "  t = {:>6.2}  E = {:>10.2}  (total)",
        times.last().unwrap(),
        cum.last().unwrap()
    );

    // Online causality: the offline optimum is allowed to "know the future"
    // but still never runs a job before its release.
    audit_online_causality(&instance, &opt.schedule).expect("causal");
    println!("\ncausality audit passed: no job ever runs before its release ✓");
}
